//! The Compressed histogram (SC): Compressed(V, F) of Poosala et al.
//!
//! Values whose frequency exceeds `N / n` (total points over bucket count)
//! are stored individually in *singular* (singleton) buckets; the remaining
//! mass is partitioned equi-depth into *regular* buckets. This is the
//! static counterpart that the Dynamic Compressed histogram of Section 3
//! relaxes and maintains incrementally.

use crate::equidepth::equi_depth_cut;
use dh_core::{BucketSpan, DataDistribution, ReadHistogram};

/// A static Compressed histogram: singleton buckets plus an equi-depth
/// remainder.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedHistogram {
    /// All bucket spans, sorted by `lo`.
    spans: Vec<BucketSpan>,
    /// Number of singleton buckets among them.
    singular: usize,
}

impl CompressedHistogram {
    /// Builds a Compressed histogram with `buckets` total buckets.
    ///
    /// The singleton criterion is applied iteratively: extracting a heavy
    /// value changes neither `N` nor `n`, so a single pass with threshold
    /// `N / n` suffices (the paper's `f >= N/n` criterion). At most
    /// `buckets - 1` singletons are created so at least one regular bucket
    /// always remains.
    ///
    /// # Panics
    /// Panics if `buckets == 0`.
    pub fn build(dist: &DataDistribution, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        if dist.is_empty() {
            return Self {
                spans: Vec::new(),
                singular: 0,
            };
        }
        let n = dist.total() as f64;
        let threshold = n / buckets as f64;

        // Heaviest-first selection of singleton values.
        let mut by_weight: Vec<(i64, u64)> = dist.iter().collect();
        by_weight.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut singles: Vec<(i64, u64)> = by_weight
            .into_iter()
            .take(buckets.saturating_sub(1))
            .take_while(|&(_, c)| c as f64 >= threshold)
            .collect();
        singles.sort_by_key(|&(v, _)| v);

        // The regular pool: every remaining value, as unit segments.
        let single_set: std::collections::BTreeSet<i64> = singles.iter().map(|&(v, _)| v).collect();
        let regular_segments: Vec<BucketSpan> = dist
            .iter()
            .filter(|(v, _)| !single_set.contains(v))
            .map(|(v, c)| BucketSpan::new(v as f64, (v + 1) as f64, c as f64))
            .collect();

        let regular_buckets = buckets - singles.len();
        let mut spans: Vec<BucketSpan> = Vec::with_capacity(buckets);
        if regular_segments.is_empty() {
            // Everything is singular.
            spans.extend(
                singles
                    .iter()
                    .map(|&(v, c)| BucketSpan::new(v as f64, (v + 1) as f64, c as f64)),
            );
            let singular = spans.len();
            return Self { spans, singular };
        }

        // Equi-depth the regular mass. Regular buckets may overlap the
        // unit intervals of singleton values (they carry no regular mass
        // there); carve the singleton intervals out afterwards so spans
        // stay disjoint.
        let cut = equi_depth_cut(&regular_segments, regular_buckets);
        let singular = singles.len();
        let mut singles_iter = singles.iter().peekable();
        for span in cut {
            // Emit singletons that lie before this span.
            while let Some(&&(v, c)) = singles_iter.peek() {
                if (v as f64) < span.lo {
                    spans.push(BucketSpan::new(v as f64, (v + 1) as f64, c as f64));
                    singles_iter.next();
                } else {
                    break;
                }
            }
            // Carve out singleton intervals inside the span.
            let mut cursor = span.lo;
            let mut pieces: Vec<(f64, f64)> = Vec::new();
            let mut inner = singles_iter.clone();
            while let Some(&&(v, _)) = inner.peek() {
                let s_lo = v as f64;
                let s_hi = s_lo + 1.0;
                if s_lo >= span.hi {
                    break;
                }
                if s_lo > cursor {
                    pieces.push((cursor, s_lo));
                }
                cursor = cursor.max(s_hi);
                inner.next();
            }
            if cursor < span.hi {
                pieces.push((cursor, span.hi));
            }
            // Distribute the span's mass across its pieces proportionally
            // to the regular mass under them.
            let piece_mass: Vec<f64> = pieces
                .iter()
                .map(|&(a, b)| {
                    regular_segments
                        .iter()
                        .map(|s| s.mass_in(a, b))
                        .sum::<f64>()
                })
                .collect();
            let total_piece: f64 = piece_mass.iter().sum();
            for (idx, &(a, b)) in pieces.iter().enumerate() {
                let mass = if total_piece > 0.0 {
                    span.count * piece_mass[idx] / total_piece
                } else {
                    span.count / pieces.len().max(1) as f64
                };
                // Emit singletons that lie before this piece.
                while let Some(&&(v, c)) = singles_iter.peek() {
                    if (v as f64) < a {
                        spans.push(BucketSpan::new(v as f64, (v + 1) as f64, c as f64));
                        singles_iter.next();
                    } else {
                        break;
                    }
                }
                if b > a {
                    spans.push(BucketSpan::new(a, b, mass));
                }
            }
        }
        for &(v, c) in singles_iter {
            spans.push(BucketSpan::new(v as f64, (v + 1) as f64, c as f64));
        }
        spans.sort_by(|a, b| a.lo.total_cmp(&b.lo));
        Self { spans, singular }
    }

    /// Builds directly from raw values.
    pub fn from_values(values: &[i64], buckets: usize) -> Self {
        Self::build(&DataDistribution::from_values(values), buckets)
    }

    /// Number of singleton buckets.
    pub fn singular_buckets(&self) -> usize {
        self.singular
    }

    /// The bucket spans (regular buckets may be split into pieces around
    /// singletons, so there can be slightly more spans than the nominal
    /// bucket count; the memory model is unaffected since pieces share one
    /// stored count).
    pub fn buckets(&self) -> &[BucketSpan] {
        &self.spans
    }
}

impl ReadHistogram for CompressedHistogram {
    dh_core::span_backed_reads!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_core::ks_error;

    #[test]
    fn heavy_values_get_singleton_buckets() {
        let mut values = vec![100i64; 500]; // huge spike
        values.extend(0..50i64);
        let dist = DataDistribution::from_values(&values);
        let h = CompressedHistogram::build(&dist, 8);
        assert!(h.singular_buckets() >= 1);
        // The spike is captured exactly.
        assert!((h.estimate_eq(100) - 500.0).abs() < 1e-6);
        assert!((h.total_count() - 550.0).abs() < 1e-6);
    }

    #[test]
    fn uniform_data_has_no_singletons() {
        let values: Vec<i64> = (0..1000).collect();
        let dist = DataDistribution::from_values(&values);
        let h = CompressedHistogram::build(&dist, 10);
        assert_eq!(h.singular_buckets(), 0);
        let ks = ks_error(&h, &dist);
        assert!(ks <= 0.1 + 1e-9, "should degrade to equi-depth, ks={ks}");
    }

    #[test]
    fn compressed_beats_equidepth_on_spiky_data() {
        use crate::equidepth::EquiDepthHistogram;
        let mut values = Vec::new();
        // Several spikes over a uniform background.
        for v in 0..1000i64 {
            values.push(v);
        }
        for &spike in &[100i64, 300, 500, 700, 900] {
            values.extend(std::iter::repeat_n(spike, 400));
        }
        let dist = DataDistribution::from_values(&values);
        let sc = CompressedHistogram::build(&dist, 12);
        let ed = EquiDepthHistogram::build(&dist, 12);
        let ks_sc = ks_error(&sc, &dist);
        let ks_ed = ks_error(&ed, &dist);
        assert!(
            ks_sc <= ks_ed + 1e-9,
            "Compressed ({ks_sc}) should not lose to Equi-Depth ({ks_ed})"
        );
    }

    #[test]
    fn spans_are_disjoint_and_sorted() {
        let mut values = vec![5i64; 100];
        values.extend(0..30i64);
        values.extend(std::iter::repeat_n(17i64, 80));
        let dist = DataDistribution::from_values(&values);
        let h = CompressedHistogram::build(&dist, 6);
        let spans = h.buckets();
        for w in spans.windows(2) {
            assert!(w[0].hi <= w[1].lo + 1e-9, "overlap: {w:?}");
        }
        let mass: f64 = spans.iter().map(|s| s.count).sum();
        assert!((mass - 210.0).abs() < 1e-6);
    }

    #[test]
    fn all_mass_in_one_value() {
        let dist = DataDistribution::from_values(&[7i64; 42]);
        let h = CompressedHistogram::build(&dist, 4);
        assert!(ks_error(&h, &dist) < 1e-9);
    }

    #[test]
    fn empty_distribution() {
        let h = CompressedHistogram::build(&DataDistribution::new(), 4);
        assert_eq!(h.num_buckets(), 0);
    }
}
