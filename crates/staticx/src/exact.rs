//! The exact histogram: one unit-width bucket per distinct value.
//!
//! Represents the data distribution with zero error. It is the starting
//! point of the SSBM construction ("initially, load all the data in an
//! exact histogram") and the reference against which the KS statistic of
//! any other histogram can be sanity-checked.

use dh_core::{BucketSpan, DataDistribution, ReadHistogram};

/// A lossless histogram with one bucket per distinct value.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactHistogram {
    spans: Vec<BucketSpan>,
}

impl ExactHistogram {
    /// Builds the exact histogram of a distribution.
    pub fn build(dist: &DataDistribution) -> Self {
        Self {
            spans: dist
                .iter()
                .map(|(v, c)| BucketSpan::new(v as f64, (v + 1) as f64, c as f64))
                .collect(),
        }
    }

    /// Builds directly from raw values.
    pub fn from_values(values: &[i64]) -> Self {
        Self::build(&DataDistribution::from_values(values))
    }

    /// The bucket spans (sorted, one per distinct value).
    pub fn buckets(&self) -> &[BucketSpan] {
        &self.spans
    }
}

impl ReadHistogram for ExactHistogram {
    dh_core::span_backed_reads!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_core::ks_error;

    #[test]
    fn exact_histogram_has_zero_error() {
        let dist = DataDistribution::from_values(&[1, 1, 5, 9, 9, 9, 200]);
        let h = ExactHistogram::build(&dist);
        assert_eq!(h.num_buckets(), 4);
        assert_eq!(h.total_count(), 7.0);
        assert!(ks_error(&h, &dist) < 1e-12);
    }

    #[test]
    fn estimates_are_exact() {
        let dist = DataDistribution::from_values(&[2, 2, 2, 7, 11]);
        let h = ExactHistogram::build(&dist);
        assert_eq!(h.estimate_eq(2), 3.0);
        assert_eq!(h.estimate_eq(3), 0.0);
        assert_eq!(h.estimate_range(2, 7), 4.0);
        assert_eq!(h.estimate_le(11), 5.0);
    }

    #[test]
    fn empty_distribution() {
        let h = ExactHistogram::build(&DataDistribution::new());
        assert_eq!(h.num_buckets(), 0);
        assert_eq!(h.total_count(), 0.0);
    }
}
