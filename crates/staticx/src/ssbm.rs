//! Successive Similar Bucket Merge (SSBM) — the paper's new static
//! histogram (Section 5).
//!
//! Construction starts from the *exact* histogram (one bucket per non-empty
//! distinct point) and successively merges the adjacent pair with the
//! smallest merged deviation `φ_M` (Eq. 4) until the target bucket count
//! remains. Most-similar buckets merge first, so sharp frequency
//! transitions survive as bucket borders — the same intuition that powers
//! the DADO dynamic histogram.
//!
//! The paper reports SSBM quality comparable to V-Optimal at quadratic
//! (here: `O(D log D)` with a lazy priority queue) rather than exponential
//! cost; Fig. 13 compares construction times.
//!
//! Merged-pair costs are evaluated over the pair's current piecewise
//! approximation — including any empty gap between the buckets, whose
//! domain values have frequency zero under the continuous-value
//! assumption.

use dh_core::dynamic::deviation::{DeviationPolicy, SquaredDeviation};
use dh_core::{BucketSpan, DataDistribution, ReadHistogram};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An f64 ordered by `total_cmp` so it can live in a heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Linked-list node during merging.
#[derive(Debug, Clone, Copy)]
struct Node {
    lo: f64,
    hi: f64,
    count: f64,
    prev: usize,
    next: usize,
    alive: bool,
    version: u32,
}

const NIL: usize = usize::MAX;

/// `φ_M` of merging two (possibly gap-separated) uniform buckets, per
/// Eq. (4) with the current approximation as ground truth.
fn merged_phi<P: DeviationPolicy>(a: &Node, b: &Node) -> f64 {
    let w = b.hi - a.lo;
    if w <= 0.0 {
        return 0.0;
    }
    let favg = (a.count + b.count) / w;
    let wa = a.hi - a.lo;
    let wb = b.hi - b.lo;
    let wgap = b.lo - a.hi;
    let mut phi = 0.0;
    if wa > 0.0 {
        phi += wa * P::dev(a.count / wa - favg);
    }
    if wgap > 0.0 {
        phi += wgap * P::dev(0.0 - favg);
    }
    if wb > 0.0 {
        phi += wb * P::dev(b.count / wb - favg);
    }
    phi
}

/// Reduces `spans` to at most `target` buckets by successive
/// smallest-`φ_M` merges. The generic entry point, also used to re-reduce
/// superimposed global histograms in the shared-nothing experiments
/// (Section 8).
pub fn ssbm_reduce<P: DeviationPolicy>(spans: &[BucketSpan], target: usize) -> Vec<BucketSpan> {
    assert!(target > 0, "need at least one bucket");
    if spans.len() <= target {
        return spans.to_vec();
    }
    let mut sorted: Vec<BucketSpan> = spans.to_vec();
    sorted.sort_by(|a, b| a.lo.total_cmp(&b.lo));

    let n = sorted.len();
    let mut nodes: Vec<Node> = sorted
        .iter()
        .enumerate()
        .map(|(i, s)| Node {
            lo: s.lo,
            hi: s.hi,
            count: s.count,
            prev: if i == 0 { NIL } else { i - 1 },
            next: if i + 1 == n { NIL } else { i + 1 },
            alive: true,
            version: 0,
        })
        .collect();

    // Min-heap of (phi, left index, left version, right version).
    let mut heap: BinaryHeap<Reverse<(OrdF64, usize, u32, u32)>> = BinaryHeap::with_capacity(n * 2);
    for i in 0..n - 1 {
        let phi = merged_phi::<P>(&nodes[i], &nodes[i + 1]);
        heap.push(Reverse((OrdF64(phi), i, 0, 0)));
    }

    let mut alive = n;
    while alive > target {
        let Some(Reverse((_, left, lv, rv))) = heap.pop() else {
            break;
        };
        let l = nodes[left];
        if !l.alive || l.version != lv || l.next == NIL {
            continue;
        }
        let right = l.next;
        let r = nodes[right];
        if !r.alive || r.version != rv {
            continue;
        }
        // Merge right into left.
        nodes[left].hi = r.hi;
        nodes[left].count = l.count + r.count;
        nodes[left].next = r.next;
        nodes[left].version += 1;
        nodes[right].alive = false;
        if r.next != NIL {
            nodes[r.next].prev = left;
        }
        alive -= 1;

        // Refresh the two affected candidate pairs.
        let merged = nodes[left];
        if merged.prev != NIL {
            let p = nodes[merged.prev];
            let phi = merged_phi::<P>(&p, &merged);
            heap.push(Reverse((
                OrdF64(phi),
                merged.prev,
                p.version,
                merged.version,
            )));
        }
        if merged.next != NIL {
            let nx = nodes[merged.next];
            let phi = merged_phi::<P>(&merged, &nx);
            heap.push(Reverse((OrdF64(phi), left, merged.version, nx.version)));
        }
    }

    nodes
        .into_iter()
        .filter(|nd| nd.alive)
        .map(|nd| BucketSpan::new(nd.lo, nd.hi, nd.count))
        .collect()
}

/// The SSBM static histogram (Section 5).
#[derive(Debug, Clone, PartialEq)]
pub struct SsbmHistogram {
    spans: Vec<BucketSpan>,
}

impl SsbmHistogram {
    /// Builds an SSBM histogram with the paper's squared-deviation merge
    /// cost (SSBM belongs to the V-Optimal family).
    ///
    /// # Panics
    /// Panics if `buckets == 0`.
    pub fn build(dist: &DataDistribution, buckets: usize) -> Self {
        Self::build_with_policy::<SquaredDeviation>(dist, buckets)
    }

    /// Builds an SSBM histogram under an explicit deviation policy
    /// (absolute deviations give the AD-flavored variant).
    pub fn build_with_policy<P: DeviationPolicy>(dist: &DataDistribution, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        let exact: Vec<BucketSpan> = dist
            .iter()
            .map(|(v, c)| BucketSpan::new(v as f64, (v + 1) as f64, c as f64))
            .collect();
        Self {
            spans: ssbm_reduce::<P>(&exact, buckets),
        }
    }

    /// Builds directly from raw values.
    pub fn from_values(values: &[i64], buckets: usize) -> Self {
        Self::build(&DataDistribution::from_values(values), buckets)
    }

    /// Wraps pre-reduced spans (used by the distributed union path).
    pub fn from_spans(spans: Vec<BucketSpan>) -> Self {
        Self { spans }
    }

    /// The bucket spans.
    pub fn buckets(&self) -> &[BucketSpan] {
        &self.spans
    }
}

impl ReadHistogram for SsbmHistogram {
    dh_core::span_backed_reads!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_core::ks_error;

    #[test]
    fn reduces_to_target_bucket_count() {
        let values: Vec<i64> = (0..200).collect();
        let h = SsbmHistogram::from_values(&values, 10);
        assert_eq!(h.num_buckets(), 10);
        assert_eq!(h.total_count(), 200.0);
    }

    #[test]
    fn fewer_values_than_buckets_stays_exact() {
        let values = [3i64, 9, 9, 40];
        let dist = DataDistribution::from_values(&values);
        let h = SsbmHistogram::build(&dist, 16);
        assert_eq!(h.num_buckets(), 3);
        assert!(ks_error(&h, &dist) < 1e-12);
    }

    #[test]
    fn merges_most_similar_first() {
        // Values 0 and 1 have identical frequencies; 50 is very different.
        // With 2 buckets, {0,1} must merge and 50 stays alone.
        let mut values = vec![0i64; 10];
        values.extend(std::iter::repeat_n(1i64, 10));
        values.extend(std::iter::repeat_n(50i64, 500));
        let h = SsbmHistogram::from_values(&values, 2);
        let b = h.buckets();
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].count, 20.0, "flat pair should have merged: {b:?}");
        assert_eq!(b[1].count, 500.0);
        assert!(b[1].is_unit_width(), "spike bucket must stay singular");
    }

    #[test]
    fn preserves_total_mass() {
        let values: Vec<i64> = (0..3000).map(|i| (i * 7) % 450).collect();
        let h = SsbmHistogram::from_values(&values, 20);
        let mass: f64 = h.buckets().iter().map(|s| s.count).sum();
        assert!((mass - 3000.0).abs() < 1e-6);
    }

    #[test]
    fn close_to_voptimal_quality() {
        use crate::optimal::VOptimalHistogram;
        // Clustered data with spikes: SSBM should be near SVO (the paper's
        // headline claim for SSBM).
        let mut values = Vec::new();
        for v in 0..300i64 {
            let f = 1 + ((v / 30) % 5) * 4; // stepped plateaus
            values.extend(std::iter::repeat_n(v, f as usize));
        }
        values.extend(std::iter::repeat_n(150i64, 400)); // spike
        let dist = DataDistribution::from_values(&values);
        let svo = VOptimalHistogram::build(&dist, 12);
        let ssbm = SsbmHistogram::build(&dist, 12);
        let ks_svo = ks_error(&svo, &dist);
        let ks_ssbm = ks_error(&ssbm, &dist);
        assert!(
            ks_ssbm <= 2.5 * ks_svo + 0.01,
            "SSBM ({ks_ssbm}) should be near SVO ({ks_svo})"
        );
    }

    #[test]
    fn gap_mass_is_penalized_in_merge_cost() {
        // Merging across a wide empty gap must cost more than merging
        // adjacent similar buckets.
        let a = Node {
            lo: 0.0,
            hi: 1.0,
            count: 10.0,
            prev: NIL,
            next: 1,
            alive: true,
            version: 0,
        };
        let b_far = Node {
            lo: 100.0,
            hi: 101.0,
            count: 10.0,
            prev: 0,
            next: NIL,
            alive: true,
            version: 0,
        };
        let b_near = Node {
            lo: 1.0,
            hi: 2.0,
            count: 10.0,
            prev: 0,
            next: NIL,
            alive: true,
            version: 0,
        };
        let far = merged_phi::<SquaredDeviation>(&a, &b_far);
        let near = merged_phi::<SquaredDeviation>(&a, &b_near);
        assert!(far > near, "gap merge ({far}) must cost more than ({near})");
        assert_eq!(near, 0.0, "equal adjacent buckets merge for free");
    }

    #[test]
    fn reduce_spans_entry_point() {
        let spans = vec![
            BucketSpan::new(0.0, 1.0, 5.0),
            BucketSpan::new(1.0, 2.0, 5.0),
            BucketSpan::new(2.0, 3.0, 5.0),
            BucketSpan::new(3.0, 4.0, 100.0),
        ];
        let reduced = ssbm_reduce::<SquaredDeviation>(&spans, 2);
        assert_eq!(reduced.len(), 2);
        let mass: f64 = reduced.iter().map(|s| s.count).sum();
        assert!((mass - 115.0).abs() < 1e-9);
    }

    #[test]
    fn absolute_policy_variant_builds() {
        use dh_core::dynamic::deviation::AbsoluteDeviation;
        let values: Vec<i64> = (0..100).map(|i| i % 40).collect();
        let dist = DataDistribution::from_values(&values);
        let h = SsbmHistogram::build_with_policy::<AbsoluteDeviation>(&dist, 8);
        assert_eq!(h.num_buckets(), 8);
    }

    #[test]
    fn empty_distribution() {
        let h = SsbmHistogram::build(&DataDistribution::new(), 4);
        assert_eq!(h.num_buckets(), 0);
    }
}
