//! Static histograms: built from a complete scan of the data.
//!
//! These are the paper's static baselines and its two new static
//! contributions:
//!
//! * [`EquiWidthHistogram`] — Equi-Sum(V, S): equal value ranges.
//! * [`EquiDepthHistogram`] — Equi-Sum(V, F): equal counts.
//! * [`CompressedHistogram`] (SC) — singleton buckets for high-frequency
//!   values, equi-depth for the rest (Poosala et al.).
//! * [`VOptimalHistogram`] (SVO) — minimizes the total weighted variance of
//!   frequencies (Eq. 2/3), computed *exactly* by dynamic programming.
//! * [`SadoHistogram`] (SADO, **new in the paper**) — minimizes the sum of
//!   absolute deviations of frequencies from bucket means (Eq. 5), also
//!   exact via DP.
//! * [`SsbmHistogram`] (SSBM, **new in the paper**) — Successive Similar
//!   Bucket Merge: starts from the exact histogram and repeatedly merges
//!   the adjacent pair with the smallest merged deviation (Eq. 4),
//!   approaching V-Optimal quality at a fraction of the cost.
//! * [`ExactHistogram`] — one unit bucket per distinct value (zero error;
//!   the SSBM starting point and a testing reference).
//!
//! All builders consume a [`dh_core::DataDistribution`] and a bucket count,
//! and produce immutable histograms implementing
//! [`dh_core::ReadHistogram`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compressed;
pub mod equidepth;
pub mod equiwidth;
pub mod exact;
pub mod optimal;
pub mod ssbm;

pub use compressed::CompressedHistogram;
pub use equidepth::EquiDepthHistogram;
pub use equiwidth::EquiWidthHistogram;
pub use exact::ExactHistogram;
pub use optimal::{SadoHistogram, VOptimalHistogram};
pub use ssbm::SsbmHistogram;
