//! The Equi-Depth histogram: Equi-Sum(V, F) in the framework of \[9\].
//!
//! Partitions the value axis so every bucket carries the same mass. Borders
//! are placed exactly (possibly inside a value's unit interval), so the
//! bucket counts are *perfectly* equal and the KS error is bounded by
//! `1/buckets` (Section 7.2.1 of the paper).

use dh_core::{BucketSpan, DataDistribution, ReadHistogram};

/// Cuts a sorted piecewise-uniform density into `k` equal-mass spans
/// covering `[segments[0].lo, segments.last().hi)`.
///
/// Shared by Equi-Depth and the regular part of Compressed.
pub(crate) fn equi_depth_cut(segments: &[BucketSpan], k: usize) -> Vec<BucketSpan> {
    assert!(k > 0, "need at least one bucket");
    if segments.is_empty() {
        return Vec::new();
    }
    let lo = segments[0].lo;
    let hi = segments.last().expect("nonempty").hi;
    let total: f64 = segments.iter().map(|s| s.count).sum();
    let target = total / k as f64;

    let mut out = Vec::with_capacity(k);
    let mut cursor = lo;
    let mut seg_idx = 0usize;
    let mut consumed = 0.0; // mass consumed from segments[seg_idx] so far
    for j in 0..k {
        let start = cursor;
        if j + 1 == k {
            out.push(BucketSpan::new(start, hi, target.max(0.0)));
            break;
        }
        let mut need = target;
        loop {
            let seg = &segments[seg_idx];
            let avail = seg.count - consumed;
            if avail >= need && seg.count > 0.0 {
                let frac_pos = seg.lo + (consumed + need) / seg.density();
                consumed += need;
                cursor = frac_pos;
                break;
            }
            need -= avail.max(0.0);
            seg_idx += 1;
            consumed = 0.0;
            if seg_idx >= segments.len() {
                cursor = hi;
                break;
            }
        }
        out.push(BucketSpan::new(start, cursor.max(start), target.max(0.0)));
    }
    out
}

/// An equal-count static histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiDepthHistogram {
    spans: Vec<BucketSpan>,
}

impl EquiDepthHistogram {
    /// Builds an equi-depth histogram with `buckets` buckets.
    ///
    /// # Panics
    /// Panics if `buckets == 0`.
    pub fn build(dist: &DataDistribution, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        let unit_spans: Vec<BucketSpan> = dist
            .iter()
            .map(|(v, c)| BucketSpan::new(v as f64, (v + 1) as f64, c as f64))
            .collect();
        Self {
            spans: equi_depth_cut(&unit_spans, buckets),
        }
    }

    /// Builds directly from raw values.
    pub fn from_values(values: &[i64], buckets: usize) -> Self {
        Self::build(&DataDistribution::from_values(values), buckets)
    }

    /// The bucket spans.
    pub fn buckets(&self) -> &[BucketSpan] {
        &self.spans
    }
}

impl ReadHistogram for EquiDepthHistogram {
    dh_core::span_backed_reads!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_core::ks_error;

    #[test]
    fn counts_are_equal() {
        let values: Vec<i64> = (0..97).collect(); // deliberately not divisible
        let dist = DataDistribution::from_values(&values);
        let h = EquiDepthHistogram::build(&dist, 8);
        assert_eq!(h.num_buckets(), 8);
        let expected = 97.0 / 8.0;
        for s in h.buckets() {
            assert!((s.count - expected).abs() < 1e-9, "{s:?}");
        }
    }

    #[test]
    fn spans_tile_domain() {
        let values: Vec<i64> = (0..50).map(|i| i * 3).collect();
        let dist = DataDistribution::from_values(&values);
        let h = EquiDepthHistogram::build(&dist, 7);
        let spans = h.buckets();
        assert_eq!(spans[0].lo, 0.0);
        assert_eq!(spans.last().unwrap().hi, 148.0);
        for w in spans.windows(2) {
            assert!((w[0].hi - w[1].lo).abs() < 1e-9);
        }
    }

    #[test]
    fn ks_error_bounded_by_one_over_beta() {
        // The paper's bound: equi-depth KS error <= 1/beta.
        let mut values = Vec::new();
        for v in 0..200i64 {
            for _ in 0..(1 + (v * v) % 17) {
                values.push(v);
            }
        }
        let dist = DataDistribution::from_values(&values);
        for beta in [2usize, 5, 10, 25] {
            let h = EquiDepthHistogram::build(&dist, beta);
            let ks = ks_error(&h, &dist);
            assert!(
                ks <= 1.0 / beta as f64 + 1e-9,
                "beta={beta}: ks={ks} exceeds bound"
            );
        }
    }

    #[test]
    fn heavy_spike_consumes_multiple_buckets() {
        let mut values = vec![500i64; 80];
        values.extend(0..20i64);
        let dist = DataDistribution::from_values(&values);
        let h = EquiDepthHistogram::build(&dist, 5);
        // Each bucket has 20 points; the spike (80 points) fills 4 buckets,
        // all with borders inside [500, 501).
        let inside = h
            .buckets()
            .iter()
            .filter(|s| s.lo >= 500.0 && s.hi <= 501.0)
            .count();
        assert!(inside >= 3, "expected narrow buckets over the spike");
    }

    #[test]
    fn empty_distribution() {
        let h = EquiDepthHistogram::build(&DataDistribution::new(), 4);
        assert_eq!(h.num_buckets(), 0);
    }

    #[test]
    fn more_buckets_than_points() {
        let dist = DataDistribution::from_values(&[1, 9]);
        let h = EquiDepthHistogram::build(&dist, 10);
        assert!((h.total_count() - 2.0).abs() < 1e-9);
        assert!(ks_error(&h, &dist) <= 0.1 + 1e-9);
    }
}
