//! Exact optimal-partition histograms: V-Optimal (SVO) and the paper's new
//! Static Average-Deviation Optimal (SADO).
//!
//! Both minimize a per-bucket deviation cost summed over buckets — squared
//! deviations of frequencies from the bucket mean for V-Optimal (Eq. 3),
//! absolute deviations for SADO (Eq. 5) — over all partitions of the value
//! axis into `n` contiguous buckets. Frequencies range over *every* domain
//! value inside a bucket (absent values count as frequency zero), per the
//! continuous-value assumption the paper adopts.
//!
//! The paper describes V-Optimal construction as exponential; this module
//! computes the *same optimum* with the classic `O(n·D²)` dynamic program
//! (Jagadish et al.-style), using:
//!
//! * prefix-sum window costs for the squared measure, with an exact
//!   monotonicity cut in the DP's inner scan, and
//! * an epoch-stamped Fenwick tree over frequency values for the absolute
//!   measure (sum of `|f - mean|` in `O(log F)` per window extension),
//!   whose inner scan is cut by a median-based lower bound — the L1
//!   deviation about the median is monotone under window extension, which
//!   the mean-based cost itself is not.

use dh_core::{BucketSpan, DataDistribution, ReadHistogram};

/// Memoized error matrix for the squared measure: prefix sums of `f` and
/// `f²` give any window's cost `Σf² - (Σf)²/len` in O(1), instead of the
/// O(D) oracle re-scan per right endpoint the generic DP pays.
struct SsePrefix {
    sum: Vec<f64>,
    sumsq: Vec<f64>,
}

impl SsePrefix {
    fn new(freqs: &[f64]) -> Self {
        let mut sum = Vec::with_capacity(freqs.len() + 1);
        let mut sumsq = Vec::with_capacity(freqs.len() + 1);
        sum.push(0.0);
        sumsq.push(0.0);
        for &f in freqs {
            sum.push(sum.last().expect("nonempty") + f);
            sumsq.push(sumsq.last().expect("nonempty") + f * f);
        }
        Self { sum, sumsq }
    }

    /// Squared-deviation cost of the window `i..=j`.
    #[inline]
    fn cost(&self, i: usize, j: usize) -> f64 {
        let len = (j - i + 1) as f64;
        let s = self.sum[j + 1] - self.sum[i];
        let q = self.sumsq[j + 1] - self.sumsq[i];
        (q - s * s / len).max(0.0)
    }
}

/// The V-Optimal DP specialized to the squared measure: O(1) window costs
/// from [`SsePrefix`] and a monotonicity cut in the inner scan.
///
/// The cut is exact, not heuristic: scanning candidate left borders `i`
/// downward, the window cost `cost(i, j)` can only grow (the squared
/// deviation of a window dominates that of any sub-window, since the mean
/// minimizes it), and the prefix term `e[i-1][b-1]` is non-negative — so
/// once `cost(i, j)` alone reaches the best split found, no smaller `i`
/// can win and the scan stops. On the paper's skewed distributions the
/// scan collapses from O(D) to a short constant, which is what makes the
/// exact DP usable inside test suites and the `Catalog` rebuild path.
fn optimal_partition_sse(freqs: &[f64], n: usize) -> Vec<usize> {
    let d = freqs.len();
    debug_assert!(d > 0);
    let n = n.min(d).max(1);
    let stride = n + 1;
    let inf = f64::INFINITY;
    let prefix = SsePrefix::new(freqs);
    let mut choice = vec![0u32; d * stride];
    // Rolling layers: e_cur[j] = minimal cost of covering 0..=j with b
    // buckets.
    let mut e_prev = vec![inf; d];
    let mut e_cur: Vec<f64> = (0..d).map(|j| prefix.cost(0, j)).collect();
    for b in 2..=n {
        std::mem::swap(&mut e_prev, &mut e_cur);
        e_cur.fill(inf);
        for j in (b - 1)..d {
            let mut best = inf;
            let mut best_i = b - 1;
            for i in ((b - 1)..=j).rev() {
                let c = prefix.cost(i, j);
                if c >= best {
                    break; // monotone window cost: no smaller i can win
                }
                let prev = e_prev[i - 1];
                if prev == inf {
                    continue;
                }
                let cand = prev + c;
                if cand < best {
                    best = cand;
                    best_i = i;
                }
            }
            e_cur[j] = best;
            choice[j * stride + b] = best_i as u32;
        }
    }
    reconstruct_starts(&choice, d, n)
}

/// Walks a `choice` table (bucket start per `(j, b)`) back into the start
/// index of each bucket, increasing.
fn reconstruct_starts(choice: &[u32], d: usize, n: usize) -> Vec<usize> {
    let stride = n + 1;
    let mut starts = vec![0usize; n];
    let mut j = d - 1;
    for b in (1..=n).rev() {
        let i = choice[j * stride + b] as usize;
        starts[b - 1] = i;
        if i == 0 {
            break;
        }
        j = i - 1;
    }
    starts
}

/// Epoch-stamped Fenwick tree over integer frequency values, answering
/// prefix `(count, sum)` queries. `clear` is O(1); stale nodes are reset
/// lazily on touch.
#[derive(Debug)]
struct FreqBit {
    cnt: Vec<u64>,
    sum: Vec<f64>,
    epoch: Vec<u32>,
    current: u32,
}

impl FreqBit {
    fn new(max_freq: usize) -> Self {
        let n = max_freq + 2;
        Self {
            cnt: vec![0; n],
            sum: vec![0.0; n],
            epoch: vec![0; n],
            current: 0,
        }
    }

    fn clear(&mut self) {
        self.current = self.current.wrapping_add(1);
    }

    fn touch(&mut self, i: usize) {
        if self.epoch[i] != self.current {
            self.epoch[i] = self.current;
            self.cnt[i] = 0;
            self.sum[i] = 0.0;
        }
    }

    /// Records one element with frequency value `f`.
    fn add(&mut self, f: usize) {
        let mut i = f + 1; // 1-based
        while i < self.cnt.len() {
            self.touch(i);
            self.cnt[i] += 1;
            self.sum[i] += f as f64;
            i += i & i.wrapping_neg();
        }
    }

    /// The `k`-th smallest recorded frequency value (1-based `k`), by
    /// binary descent over the tree. Requires `1 <= k <= #recorded`.
    fn kth(&self, k: u64) -> usize {
        let n = self.cnt.len();
        let mut step = 1usize;
        while step * 2 < n {
            step *= 2;
        }
        let mut pos = 0usize; // largest 1-based index with prefix count < k
        let mut rem = k;
        while step > 0 {
            let next = pos + step;
            if next < n {
                let c = if self.epoch[next] == self.current {
                    self.cnt[next]
                } else {
                    0
                };
                if c < rem {
                    rem -= c;
                    pos = next;
                }
            }
            step /= 2;
        }
        pos // answer index is pos + 1, i.e. frequency value pos
    }

    /// `(count, sum)` of recorded elements with frequency `<= f`.
    fn prefix(&self, f: usize) -> (u64, f64) {
        let mut i = (f + 1).min(self.cnt.len() - 1);
        let (mut c, mut s) = (0u64, 0.0f64);
        while i > 0 {
            if self.epoch[i] == self.current {
                c += self.cnt[i];
                s += self.sum[i];
            }
            i -= i & i.wrapping_neg();
        }
        (c, s)
    }
}

/// Absolute-deviation window cost: `Σ|f - mean|` via the Fenwick tree.
#[derive(Debug)]
struct AbsDevCost {
    bit: FreqBit,
    sum: f64,
    len: usize,
    /// Latest median-based lower bound (see [`AbsDevCost::extend`]).
    last_lb: f64,
}

/// Recompute the median lower bound every this many extensions. Any
/// stale bound is still a valid (just weaker) bound, so sampling trades
/// a few extra scan iterations for skipping most of the select descents.
const LB_REFRESH: usize = 8;

impl AbsDevCost {
    fn new(max_freq: usize) -> Self {
        Self {
            bit: FreqBit::new(max_freq),
            sum: 0.0,
            len: 0,
            last_lb: 0.0,
        }
    }
}

impl AbsDevCost {
    /// Starts a new (empty) window ending at `j`.
    fn begin(&mut self) {
        self.bit.clear();
        self.sum = 0.0;
        self.len = 0;
        self.last_lb = 0.0;
    }

    /// Extends the window to include element frequency `f`, returning
    /// `(cost, lower_bound)`:
    ///
    /// * `cost` — the paper's bucket cost, `Σ|f - mean|` (Eq. 5);
    /// * `lower_bound` — `Σ|f - median|`, computed from the same Fenwick
    ///   tree via a select descent. The median minimizes the L1 deviation,
    ///   so `lower_bound <= cost`; and because the minimal L1 deviation of
    ///   a superset dominates that of any subset, `lower_bound` can only
    ///   grow as the window extends leftward — the monotone quantity the
    ///   DP's early cut needs (the mean-based `cost` itself is *not*
    ///   monotone, which is why the squared path's cut doesn't transfer
    ///   directly). Monotonicity also means a stale bound stays valid, so
    ///   it is only recomputed every [`LB_REFRESH`] extensions.
    fn extend(&mut self, f: f64) -> (f64, f64) {
        let fi = f as usize;
        self.bit.add(fi);
        self.sum += f;
        self.len += 1;
        let mean = self.sum / self.len as f64;
        // Integer frequencies: f <= mean  <=>  f <= floor(mean).
        let (c_le, s_le) = self.bit.prefix(mean.floor() as usize);
        let below = c_le as f64 * mean - s_le;
        let above = (self.sum - s_le) - (self.len as f64 - c_le as f64) * mean;
        let cost = (below + above).max(0.0);
        if self.len < LB_REFRESH || self.len % LB_REFRESH == 0 {
            let m = self.bit.kth(self.len.div_ceil(2) as u64) as f64;
            let (c_m, s_m) = self.bit.prefix(m as usize);
            let lb_below = c_m as f64 * m - s_m;
            let lb_above = (self.sum - s_m) - (self.len as f64 - c_m as f64) * m;
            self.last_lb = self.last_lb.max((lb_below + lb_above).max(0.0));
        }
        (cost, self.last_lb)
    }
}

/// Runs the optimal-partition DP over `freqs` (the frequency of every
/// domain value on the grid) into at most `n` buckets, under the
/// absolute-deviation measure (the squared measure takes the faster
/// [`optimal_partition_sse`] path). Returns the start index of each
/// bucket, increasing.
///
/// The inner scan over candidate left borders runs right-to-left and
/// stops at the median-based lower bound: once `Σ|f - median|` of the
/// window `i..=j` alone reaches the best split found, no wider window can
/// win, because the true cost dominates the bound, the bound is monotone
/// in window extension, and the DP prefix term is non-negative — the
/// absolute-measure analogue of the exact monotonicity cut in
/// [`optimal_partition_sse`].
///
/// The cut pays twice: the leftward window oracle is extended *lazily*,
/// only as far as some scan actually reaches, so the cut truncates not
/// just the `O(n·D²)` DP scans but also the `O(D² log F)` Fenwick
/// extension work that otherwise dominates. The one-bucket row (full
/// prefix windows `[0..=j]`, which would force every extension to run to
/// the left edge) comes from a separate rightward-extending oracle in
/// `O(D log F)` total instead.
fn optimal_partition(freqs: &[f64], n: usize) -> Vec<usize> {
    let d = freqs.len();
    debug_assert!(d > 0);
    let n = n.min(d).max(1);
    let stride = n + 1;
    let inf = f64::INFINITY;
    let max_freq = freqs.iter().fold(0.0f64, |a, &b| a.max(b)) as usize;
    // e[j*stride + b]: minimal cost of covering 0..=j with b buckets.
    let mut e = vec![inf; d * stride];
    let mut choice = vec![0u32; d * stride];
    let mut cost = vec![0.0f64; d];
    let mut lb = vec![0.0f64; d];

    // Rightward oracle for the one-bucket row: window [0..=j] grows by
    // one element per j.
    let mut prefix_oracle = AbsDevCost::new(max_freq);
    prefix_oracle.begin();
    // Leftward oracle for the scans: window [i..=j], re-begun per j,
    // extended only as deep as the scans reach.
    let mut oracle = AbsDevCost::new(max_freq);

    for j in 0..d {
        e[j * stride + 1] = prefix_oracle.extend(freqs[j]).0;
        choice[j * stride + 1] = 0;
        let bmax = n.min(j + 1);
        if bmax < 2 {
            continue;
        }
        oracle.begin();
        let mut lowest = j + 1; // cost/lb filled for indices lowest..=j
        for b in 2..=bmax {
            let mut best = inf;
            let mut best_i = b - 1;
            for i in ((b - 1)..=j).rev() {
                while lowest > i {
                    lowest -= 1;
                    (cost[lowest], lb[lowest]) = oracle.extend(freqs[lowest]);
                }
                if lb[i] >= best {
                    break; // median cut: no wider window can win
                }
                let prev = e[(i - 1) * stride + (b - 1)];
                if prev == inf {
                    continue;
                }
                let c = prev + cost[i];
                if c < best {
                    best = c;
                    best_i = i;
                }
            }
            e[j * stride + b] = best;
            choice[j * stride + b] = best_i as u32;
        }
    }

    // The optimum may use fewer than n buckets only if d < n (handled by
    // the clamp); reconstruct the n-bucket solution.
    reconstruct_starts(&choice, d, n)
}

/// Shared builder: grid extraction, DP, span construction.
fn build_optimal(dist: &DataDistribution, buckets: usize, absolute: bool) -> Vec<BucketSpan> {
    assert!(buckets > 0, "need at least one bucket");
    let (Some(min), Some(max)) = (dist.min(), dist.max()) else {
        return Vec::new();
    };
    let d = (max - min + 1) as usize;
    let mut freqs = vec![0.0f64; d];
    for (v, c) in dist.iter() {
        freqs[(v - min) as usize] = c as f64;
    }
    let starts = if absolute {
        optimal_partition(&freqs, buckets)
    } else {
        optimal_partition_sse(&freqs, buckets)
    };

    let mut spans = Vec::with_capacity(starts.len());
    for (b, &start) in starts.iter().enumerate() {
        let end = if b + 1 < starts.len() {
            starts[b + 1]
        } else {
            d
        };
        if end <= start {
            continue; // degenerate (fewer distinct grid cells than buckets)
        }
        let count: f64 = freqs[start..end].iter().sum();
        spans.push(BucketSpan::new(
            (min + start as i64) as f64,
            (min + end as i64) as f64,
            count,
        ));
    }
    spans
}

/// The exact V-Optimal(V, F) histogram (SVO): minimizes
/// `Σ_buckets n_i · V_i` — the total squared deviation of frequencies from
/// their bucket means (Eqs. 2–3).
#[derive(Debug, Clone, PartialEq)]
pub struct VOptimalHistogram {
    spans: Vec<BucketSpan>,
}

impl VOptimalHistogram {
    /// Builds the optimal `buckets`-bucket histogram by dynamic
    /// programming (`O(buckets · D²)` with `D` the domain width).
    ///
    /// # Panics
    /// Panics if `buckets == 0`.
    pub fn build(dist: &DataDistribution, buckets: usize) -> Self {
        Self {
            spans: build_optimal(dist, buckets, false),
        }
    }

    /// Builds directly from raw values.
    pub fn from_values(values: &[i64], buckets: usize) -> Self {
        Self::build(&DataDistribution::from_values(values), buckets)
    }

    /// The bucket spans.
    pub fn buckets(&self) -> &[BucketSpan] {
        &self.spans
    }
}

impl ReadHistogram for VOptimalHistogram {
    dh_core::span_backed_reads!();
}

/// The Static Average-Deviation Optimal histogram (SADO), proposed by the
/// paper: minimizes `Σ_buckets Σ_j |f_ij - mean_i|` (Eq. 5).
#[derive(Debug, Clone, PartialEq)]
pub struct SadoHistogram {
    spans: Vec<BucketSpan>,
}

impl SadoHistogram {
    /// Builds the optimal `buckets`-bucket histogram under the
    /// absolute-deviation cost.
    ///
    /// # Panics
    /// Panics if `buckets == 0`.
    pub fn build(dist: &DataDistribution, buckets: usize) -> Self {
        Self {
            spans: build_optimal(dist, buckets, true),
        }
    }

    /// Builds directly from raw values.
    pub fn from_values(values: &[i64], buckets: usize) -> Self {
        Self::build(&DataDistribution::from_values(values), buckets)
    }

    /// The bucket spans.
    pub fn buckets(&self) -> &[BucketSpan] {
        &self.spans
    }
}

impl ReadHistogram for SadoHistogram {
    dh_core::span_backed_reads!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_core::ks_error;

    /// Brute-force optimal partition cost for cross-checking the DP.
    fn brute_force_cost(freqs: &[f64], n: usize, absolute: bool) -> f64 {
        fn window_cost(w: &[f64], absolute: bool) -> f64 {
            let mean = w.iter().sum::<f64>() / w.len() as f64;
            w.iter()
                .map(|&f| {
                    let d = f - mean;
                    if absolute {
                        d.abs()
                    } else {
                        d * d
                    }
                })
                .sum()
        }
        fn rec(freqs: &[f64], n: usize, absolute: bool) -> f64 {
            if n == 1 {
                return window_cost(freqs, absolute);
            }
            let mut best = f64::INFINITY;
            // First bucket takes freqs[..k], k >= 1, leaving enough for
            // the remaining n-1 buckets.
            for k in 1..=(freqs.len() - (n - 1)) {
                let c = window_cost(&freqs[..k], absolute) + rec(&freqs[k..], n - 1, absolute);
                best = best.min(c);
            }
            best
        }
        rec(freqs, n, absolute)
    }

    fn dp_cost(freqs: &[f64], n: usize, absolute: bool) -> f64 {
        let starts = if absolute {
            optimal_partition(freqs, n)
        } else {
            optimal_partition_sse(freqs, n)
        };
        let mut total = 0.0;
        for (b, &s) in starts.iter().enumerate() {
            let e = if b + 1 < starts.len() {
                starts[b + 1]
            } else {
                freqs.len()
            };
            if e <= s {
                continue;
            }
            let w = &freqs[s..e];
            let mean = w.iter().sum::<f64>() / w.len() as f64;
            total += w
                .iter()
                .map(|&f| {
                    let d = f - mean;
                    if absolute {
                        d.abs()
                    } else {
                        d * d
                    }
                })
                .sum::<f64>();
        }
        total
    }

    #[test]
    fn dp_matches_brute_force_squared() {
        let cases: Vec<(Vec<f64>, usize)> = vec![
            (vec![1.0, 1.0, 9.0, 9.0], 2),
            (vec![5.0, 1.0, 8.0, 2.0, 2.0, 9.0], 3),
            (vec![0.0, 0.0, 7.0, 0.0, 0.0, 7.0, 7.0, 1.0], 3),
            (vec![3.0, 3.0, 3.0], 2),
            (vec![10.0, 0.0, 10.0, 0.0, 10.0], 4),
        ];
        for (freqs, n) in cases {
            let bf = brute_force_cost(&freqs, n, false);
            let dp = dp_cost(&freqs, n, false);
            assert!(
                (bf - dp).abs() < 1e-9,
                "squared: freqs={freqs:?} n={n}: brute={bf} dp={dp}"
            );
        }
    }

    #[test]
    fn dp_matches_brute_force_absolute() {
        let cases: Vec<(Vec<f64>, usize)> = vec![
            (vec![1.0, 1.0, 9.0, 9.0], 2),
            (vec![5.0, 1.0, 8.0, 2.0, 2.0, 9.0], 3),
            (vec![0.0, 4.0, 0.0, 4.0, 8.0, 8.0, 0.0], 3),
            (vec![2.0, 2.0, 2.0, 50.0], 2),
        ];
        for (freqs, n) in cases {
            let bf = brute_force_cost(&freqs, n, true);
            let dp = dp_cost(&freqs, n, true);
            assert!(
                (bf - dp).abs() < 1e-9,
                "absolute: freqs={freqs:?} n={n}: brute={bf} dp={dp}"
            );
        }
    }

    #[test]
    fn voptimal_finds_the_step() {
        // Two flat plateaus: the optimal 2-bucket split is at the step.
        let mut values = Vec::new();
        for v in 0..10i64 {
            values.extend(std::iter::repeat_n(v, 2));
        }
        for v in 10..20i64 {
            values.extend(std::iter::repeat_n(v, 12));
        }
        let h = VOptimalHistogram::from_values(&values, 2);
        assert_eq!(h.num_buckets(), 2);
        let b = h.buckets();
        assert_eq!(b[0].hi, 10.0, "split should land exactly at the step");
        assert_eq!(b[0].count, 20.0);
        assert_eq!(b[1].count, 120.0);
    }

    #[test]
    fn sado_finds_the_step() {
        let mut values = Vec::new();
        for v in 0..8i64 {
            values.push(v);
        }
        for v in 8..16i64 {
            values.extend(std::iter::repeat_n(v, 9));
        }
        let h = SadoHistogram::from_values(&values, 2);
        let b = h.buckets();
        assert_eq!(b[0].hi, 8.0);
    }

    #[test]
    fn exact_when_buckets_cover_all_values() {
        let values = [1i64, 1, 5, 5, 5, 9];
        let dist = DataDistribution::from_values(&values);
        // Domain width 9, 9 buckets: every grid cell its own bucket.
        let h = VOptimalHistogram::build(&dist, 9);
        assert!(ks_error(&h, &dist) < 1e-9);
        let h = SadoHistogram::build(&dist, 9);
        assert!(ks_error(&h, &dist) < 1e-9);
    }

    #[test]
    fn zero_variance_plateaus_score_zero_cost() {
        // Frequencies constant: 1 bucket is already optimal; more buckets
        // must not be worse.
        let freqs = vec![4.0; 12];
        assert!(dp_cost(&freqs, 1, false) < 1e-9);
        assert!(dp_cost(&freqs, 3, false) < 1e-9);
    }

    #[test]
    fn mass_is_preserved() {
        let values: Vec<i64> = (0..500).map(|i| (i * i) % 251).collect();
        let dist = DataDistribution::from_values(&values);
        for h in [
            VOptimalHistogram::build(&dist, 7).spans,
            SadoHistogram::build(&dist, 7).spans,
        ] {
            let mass: f64 = h.iter().map(|s| s.count).sum();
            assert!((mass - 500.0).abs() < 1e-6);
        }
    }

    #[test]
    fn spans_tile_without_overlap() {
        let values: Vec<i64> = (0..300).map(|i| (i * 17) % 100).collect();
        let h = VOptimalHistogram::from_values(&values, 6);
        let spans = h.buckets();
        for w in spans.windows(2) {
            assert!((w[0].hi - w[1].lo).abs() < 1e-9);
        }
    }

    #[test]
    fn fenwick_prefix_sums() {
        let mut bit = FreqBit::new(100);
        bit.add(5);
        bit.add(5);
        bit.add(80);
        assert_eq!(bit.prefix(4), (0, 0.0));
        assert_eq!(bit.prefix(5), (2, 10.0));
        assert_eq!(bit.prefix(100), (3, 90.0));
        bit.clear();
        assert_eq!(bit.prefix(100), (0, 0.0));
        bit.add(7);
        assert_eq!(bit.prefix(100), (1, 7.0));
    }

    #[test]
    fn fenwick_select_finds_order_statistics() {
        let mut bit = FreqBit::new(100);
        for f in [5, 5, 80, 0, 13] {
            bit.add(f);
        }
        assert_eq!(bit.kth(1), 0);
        assert_eq!(bit.kth(2), 5);
        assert_eq!(bit.kth(3), 5);
        assert_eq!(bit.kth(4), 13);
        assert_eq!(bit.kth(5), 80);
        bit.clear();
        bit.add(42);
        assert_eq!(bit.kth(1), 42);
    }

    #[test]
    fn median_bound_stays_below_cost_and_grows() {
        // The two properties the DP cut relies on, checked over a
        // deterministic pseudo-random window extension.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 50) as f64
        };
        let mut oracle = AbsDevCost::new(64);
        oracle.begin();
        let mut prev_lb = 0.0f64;
        for _ in 0..200 {
            let (cost, lb) = oracle.extend(next());
            assert!(lb <= cost + 1e-9, "median bound above cost: {lb} > {cost}");
            assert!(
                lb >= prev_lb - 1e-9,
                "median bound shrank: {prev_lb} -> {lb}"
            );
            prev_lb = lb;
        }
    }

    #[test]
    fn cut_dp_matches_brute_force_on_random_inputs() {
        // The median cut must never change the optimum, only skip work.
        let mut state = 0xD1CEu64;
        let mut next = move |m: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % m
        };
        for case in 0..40 {
            let d = (next(9) + 3) as usize;
            let n = (next(4) + 2) as usize;
            let freqs: Vec<f64> = (0..d).map(|_| next(30) as f64).collect();
            let bf = brute_force_cost(&freqs, n.min(d), true);
            let dp = dp_cost(&freqs, n.min(d), true);
            assert!(
                (bf - dp).abs() < 1e-9,
                "case {case}: freqs={freqs:?} n={n}: brute={bf} dp={dp}"
            );
        }
    }

    #[test]
    fn empty_distribution() {
        let h = VOptimalHistogram::build(&DataDistribution::new(), 4);
        assert_eq!(h.num_buckets(), 0);
    }
}
