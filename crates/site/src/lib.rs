//! Multi-site global catalog: the paper's Section 8 shared-nothing
//! study, lifted off the bench harness and into the serving layer.
//!
//! The paper builds a *global histogram* over member sites two ways —
//! ship histograms and superimpose (`histogram + union`), or ship data
//! and build one (`union + histogram`) — and shows superposition lands
//! within the pooled quality band (Figs. 20–23). `dh_distributed`
//! reproduces that offline; this crate makes it a deployment story:
//!
//! * [`Site`] — the minimal estimator surface a member site exposes:
//!   register / commit, per-column span pulls pinned to an epoch, an
//!   epoch clock, a health probe, and (for catch-up) a changelog tail.
//!   Object-safe, so compositions hold `Arc<dyn Site>`.
//! * [`LocalSite`] — any [`ColumnStore`](dh_catalog::ColumnStore) in
//!   this process, adapted to the trait.
//! * [`RemoteSite`] / [`SiteServer`] — the same surface over a
//!   localhost `TcpStream`, speaking a length-prefixed CRC-framed
//!   request/response protocol that reuses the `dh_wal` record codec
//!   byte-for-byte (register and commit requests travel as the exact
//!   [`WalRecord`](dh_wal::WalRecord) frames their replay would log).
//!   The server hosts a [`DurableStore`](dh_catalog::DurableStore), so
//!   a killed site restarts from its own changelog.
//! * [`GlobalCatalog`] — a read-only
//!   [`ColumnStore`](dh_catalog::ColumnStore) over N sites: pulls
//!   per-site spans pinned to each site's epoch, reconciles the epoch
//!   clocks into a version vector, composes via
//!   [`dh_distributed::superimpose`] (optionally SSBM-reduced to a
//!   bucket budget — the paper's histogram + union strategy), and
//!   *degrades* instead of failing: unreachable or regressed sites are
//!   dropped from the composition and reported per-site as a
//!   [`SiteStatus`], with the read counted in
//!   [`ReadStats`](dh_catalog::ReadStats)' `site_*` fields.
//! * [`catch_up`] — site-to-site epoch replay: a rebuilt site pulls its
//!   peer's changelog tail over the wire ([`Site::tail`], the
//!   [`TailReader`](dh_wal::tail::TailReader) semantics one hop out)
//!   and replays records idempotently until bit-identical.
//!
//! The wire format, version-vector reconciliation, degradation
//! contract, and catch-up rule are specified in `docs/GLOBAL.md`.

#![warn(missing_docs)]

pub mod catchup;
pub mod global;
mod proto;
pub mod remote;
pub mod server;
pub mod site;

pub use catchup::{catch_up, CatchUp};
pub use global::GlobalCatalog;
pub use remote::RemoteSite;
pub use server::SiteServer;
pub use site::{LocalSite, Site, SiteError, SiteSpans, SiteStatus, SiteTail};
