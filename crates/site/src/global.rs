//! [`GlobalCatalog`] — the paper's global histogram as a serving-layer
//! [`ColumnStore`], composed over N member [`Site`]s.
//!
//! A read pulls each site's spans pinned to that site's epoch clock,
//! reconciles the clocks into a **version vector** (one monotone entry
//! per site name), and superimposes the per-site histograms with
//! [`dh_distributed::superimpose`] — the paper's `histogram + union`
//! strategy, optionally SSBM-reduced to a bucket budget. Unreachable
//! sites, and sites whose clock has *regressed* below the version
//! vector (a rebuilt site that has not caught up), are **dropped from
//! the composition instead of failing the read**; the read is counted
//! as degraded, and the per-site verdicts are published via
//! [`site_statuses`](GlobalCatalog::site_statuses) and the `site_*`
//! fields of [`ReadStats`]. `docs/GLOBAL.md` specifies the contract.
//!
//! The catalog is **read-only**: mutations belong to the member sites,
//! and every write-path method answers
//! [`CatalogError::ReadOnlyReplica`].

use crate::site::{Site, SiteError, SiteSpans, SiteStatus};
use dh_catalog::global::{set_from_snapshots, snapshot_from_spans};
use dh_catalog::{
    AlgoSpec, CatalogError, ColumnConfig, ColumnStore, ReadStats, Snapshot, SnapshotSet, WriteBatch,
};
use dh_core::dynamic::SquaredDeviation;
use dh_core::{BucketSpan, UpdateOp};
use dh_distributed::{superimpose, GlobalStrategy};
use dh_static::ssbm::ssbm_reduce;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Attempts to pin a site's span pull to one epoch before giving up on
/// the site for this read (each retry re-reads the site's clock, so
/// only a site evicting generations faster than we can ask exhausts
/// this).
const PIN_ATTEMPTS: usize = 3;

/// The version vector and last-read verdicts, updated together.
#[derive(Default)]
struct Reconciler {
    /// Highest epoch ever observed per site name. Never decreases; a
    /// site reporting below its entry is stale and sits out the read.
    vv: BTreeMap<String, u64>,
    /// Each site's verdict from the most recent read.
    statuses: BTreeMap<String, SiteStatus>,
}

/// A read-only global composition over member sites.
///
/// Cheap to share (`Arc`) and safe to read concurrently; the version
/// vector is the only shared mutable state and sits behind a mutex.
pub struct GlobalCatalog {
    sites: Vec<Arc<dyn Site>>,
    strategy: GlobalStrategy,
    budget: Option<usize>,
    reconciler: Mutex<Reconciler>,
    site_probes: AtomicU64,
    site_failures: AtomicU64,
    degraded_reads: AtomicU64,
}

/// One usable site's contribution to a read: requested column → spans,
/// `None` where the site does not host the column (a zero
/// contribution, not a failure). All entries are pinned to one site
/// epoch.
type Pulled = BTreeMap<String, Option<SiteSpans>>;

impl GlobalCatalog {
    /// A composition over `sites` with the paper's default strategy
    /// (`histogram + union`) and no bucket budget (lossless union).
    pub fn new(sites: Vec<Arc<dyn Site>>) -> Self {
        GlobalCatalog {
            sites,
            strategy: GlobalStrategy::HistogramThenUnion,
            budget: None,
            reconciler: Mutex::new(Reconciler::default()),
            site_probes: AtomicU64::new(0),
            site_failures: AtomicU64::new(0),
            degraded_reads: AtomicU64::new(0),
        }
    }

    /// Selects the composition strategy (see `docs/GLOBAL.md` for how
    /// the paper's two strategies map onto a span-shipping deployment).
    #[must_use]
    pub fn with_strategy(mut self, strategy: GlobalStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Caps composed histograms at `buckets` via SSBM reduction (the
    /// paper's `histogram + union` under a memory budget). Only applies
    /// under [`GlobalStrategy::HistogramThenUnion`]; the union-first
    /// strategy stays lossless.
    #[must_use]
    pub fn with_budget(mut self, buckets: usize) -> Self {
        self.budget = Some(buckets.max(1));
        self
    }

    /// The member sites, in composition order.
    pub fn sites(&self) -> &[Arc<dyn Site>] {
        &self.sites
    }

    /// Each site's verdict from the most recent read (or probe), in
    /// site-name order. Empty before the first read.
    pub fn site_statuses(&self) -> Vec<(String, SiteStatus)> {
        let inner = self.reconciler.lock().unwrap();
        inner
            .statuses
            .iter()
            .map(|(name, status)| (name.clone(), *status))
            .collect()
    }

    /// The version vector: the highest epoch ever observed per site.
    pub fn version_vector(&self) -> Vec<(String, u64)> {
        let inner = self.reconciler.lock().unwrap();
        inner.vv.iter().map(|(n, e)| (n.clone(), *e)).collect()
    }

    /// Pulls `columns` from every usable site and composes them into a
    /// snapshot set. The workhorse behind every read-path method.
    fn compose(&self, columns: &[&str]) -> Result<SnapshotSet, CatalogError> {
        let mut pulled: Vec<Pulled> = Vec::with_capacity(self.sites.len());
        let mut dropped = false;
        for site in &self.sites {
            self.site_probes.fetch_add(1, Ordering::Relaxed);
            match self.pull_site(site.as_ref(), columns) {
                Ok(contribution) => pulled.push(contribution),
                Err(()) => {
                    dropped = true;
                    self.site_failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if dropped {
            self.degraded_reads.fetch_add(1, Ordering::Relaxed);
        }
        if pulled.is_empty() {
            return Err(CatalogError::Durability(
                "global read found no reachable, caught-up site".to_string(),
            ));
        }

        // The global epoch is the version-vector sum — monotone because
        // entries never decrease, even across degraded reads where a
        // site's *old* entry keeps representing it.
        let global_epoch = {
            let inner = self.reconciler.lock().unwrap();
            inner.vv.values().sum()
        };

        let label = format!("global({})", self.strategy.label());
        let mut snaps = BTreeMap::new();
        for &column in columns {
            let mut members: Vec<Vec<BucketSpan>> = Vec::new();
            let mut checkpoint = 0u64;
            let mut updates = 0u64;
            for p in &pulled {
                if let Some(Some(spans)) = p.get(column) {
                    checkpoint += spans.checkpoint;
                    updates += spans.updates;
                    members.push(spans.spans.clone());
                }
            }
            if members.is_empty() {
                // No usable site hosts it: unknown globally.
                return Err(CatalogError::UnknownColumn(column.to_string()));
            }
            let spans = self.compose_spans(&members);
            snaps.insert(
                column.to_string(),
                snapshot_from_spans(column, &label, global_epoch, checkpoint, updates, spans),
            );
        }
        Ok(set_from_snapshots(global_epoch, snaps))
    }

    /// Superimposes member histograms per the configured strategy.
    fn compose_spans(&self, members: &[Vec<BucketSpan>]) -> Vec<BucketSpan> {
        let union = superimpose(members);
        match (self.strategy, self.budget) {
            (GlobalStrategy::HistogramThenUnion, Some(buckets)) if !union.is_empty() => {
                ssbm_reduce::<SquaredDeviation>(&union, buckets)
            }
            _ => union,
        }
    }

    /// Pulls every requested column from one site, pinned to a single
    /// site epoch. `Err(())` means the site sits this read out (already
    /// recorded in the reconciler); column-unknown is a `None` entry,
    /// not an error.
    fn pull_site(&self, site: &dyn Site, columns: &[&str]) -> Result<Pulled, ()> {
        let name = site.name().to_string();
        let mut epoch = match site.epoch() {
            Ok(epoch) => epoch,
            Err(_) => {
                self.record(&name, SiteStatus::Unreachable, None);
                return Err(());
            }
        };
        // Version-vector reconciliation: a clock below what we have
        // proven for this site is a rebuilt/reset member that must
        // catch up before it may contribute again.
        {
            let inner = self.reconciler.lock().unwrap();
            if let Some(&seen) = inner.vv.get(&name) {
                if epoch < seen {
                    let status = SiteStatus::Stale {
                        epoch,
                        behind: seen - epoch,
                    };
                    drop(inner);
                    self.record(&name, status, None);
                    return Err(());
                }
            }
        }

        'pin: for _ in 0..PIN_ATTEMPTS {
            let mut out = BTreeMap::new();
            for &column in columns {
                match site.snapshot_spans(column, Some(epoch)) {
                    Ok(spans) => {
                        out.insert(column.to_string(), Some(spans));
                    }
                    Err(SiteError::Store(CatalogError::UnknownColumn(_))) => {
                        out.insert(column.to_string(), None);
                    }
                    // The site moved past (or evicted) the pinned
                    // epoch mid-pull: re-read its clock and restart so
                    // every column stays pinned to one epoch.
                    Err(SiteError::Store(CatalogError::EpochEvicted(_))) => match site.epoch() {
                        Ok(fresh) if fresh != epoch => {
                            epoch = fresh;
                            continue 'pin;
                        }
                        _ => {
                            self.record(&name, SiteStatus::Unreachable, None);
                            return Err(());
                        }
                    },
                    Err(_) => {
                        self.record(&name, SiteStatus::Unreachable, None);
                        return Err(());
                    }
                }
            }
            self.record(&name, SiteStatus::Healthy { epoch }, Some(epoch));
            return Ok(out);
        }
        self.record(&name, SiteStatus::Unreachable, None);
        Err(())
    }

    /// Publishes a site's verdict, and (for healthy pulls) raises its
    /// version-vector entry.
    fn record(&self, name: &str, status: SiteStatus, advance_to: Option<u64>) {
        let mut inner = self.reconciler.lock().unwrap();
        inner.statuses.insert(name.to_string(), status);
        if let Some(epoch) = advance_to {
            let entry = inner.vv.entry(name.to_string()).or_insert(0);
            *entry = (*entry).max(epoch);
        }
    }
}

impl ColumnStore for GlobalCatalog {
    fn register(&self, _column: &str, _config: ColumnConfig) -> Result<(), CatalogError> {
        Err(CatalogError::ReadOnlyReplica)
    }

    fn columns(&self) -> Vec<String> {
        let mut union: Vec<String> = Vec::new();
        for site in &self.sites {
            self.site_probes.fetch_add(1, Ordering::Relaxed);
            match site.columns() {
                Ok(names) => union.extend(names),
                Err(_) => {
                    self.site_failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        union.sort();
        union.dedup();
        union
    }

    fn contains(&self, column: &str) -> bool {
        self.columns().iter().any(|c| c == column)
    }

    fn spec(&self, column: &str) -> Result<AlgoSpec, CatalogError> {
        // The composed histogram is a plain span union; report the
        // algorithm of the first site that hosts the column, which is
        // what a cost model keying on the legend label expects.
        for site in &self.sites {
            if let Ok(spans) = site.snapshot_spans(column, None) {
                if let Ok(spec) = spans.label.parse::<AlgoSpec>() {
                    return Ok(spec);
                }
            }
        }
        Err(CatalogError::UnknownColumn(column.to_string()))
    }

    fn commit(&self, _batch: WriteBatch) -> Result<u64, CatalogError> {
        Err(CatalogError::ReadOnlyReplica)
    }

    fn apply(&self, _column: &str, _batch: &[UpdateOp]) -> Result<u64, CatalogError> {
        Err(CatalogError::ReadOnlyReplica)
    }

    fn flush(&self, column: &str) -> Result<(), CatalogError> {
        if self.contains(column) {
            Ok(())
        } else {
            Err(CatalogError::UnknownColumn(column.to_string()))
        }
    }

    fn snapshot(&self, column: &str) -> Result<Snapshot, CatalogError> {
        let set = self.compose(&[column])?;
        set.get(column)
            .cloned()
            .ok_or_else(|| CatalogError::UnknownColumn(column.to_string()))
    }

    fn snapshot_set(&self, columns: &[&str]) -> Result<SnapshotSet, CatalogError> {
        self.compose(columns)
    }

    fn checkpoint(&self, column: &str) -> Result<u64, CatalogError> {
        Ok(self.snapshot(column)?.checkpoint())
    }

    fn epoch(&self) -> u64 {
        // Probe every site's clock so the version vector is fresh, then
        // report the vector sum (monotone across unreachable members).
        for site in &self.sites {
            self.site_probes.fetch_add(1, Ordering::Relaxed);
            match site.epoch() {
                Ok(epoch) => {
                    let seen = {
                        let inner = self.reconciler.lock().unwrap();
                        inner.vv.get(site.name()).copied()
                    };
                    match seen {
                        Some(seen) if epoch < seen => self.record(
                            site.name(),
                            SiteStatus::Stale {
                                epoch,
                                behind: seen - epoch,
                            },
                            None,
                        ),
                        _ => self.record(site.name(), SiteStatus::Healthy { epoch }, Some(epoch)),
                    }
                }
                Err(_) => {
                    self.site_failures.fetch_add(1, Ordering::Relaxed);
                    self.record(site.name(), SiteStatus::Unreachable, None);
                }
            }
        }
        let inner = self.reconciler.lock().unwrap();
        inner.vv.values().sum()
    }

    fn read_stats(&self) -> ReadStats {
        ReadStats {
            site_probes: self.site_probes.load(Ordering::Relaxed),
            site_failures: self.site_failures.load(Ordering::Relaxed),
            degraded_reads: self.degraded_reads.load(Ordering::Relaxed),
            ..ReadStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::LocalSite;
    use dh_catalog::Catalog;
    use dh_core::{MemoryBudget, ReadHistogram};

    fn site(name: &str, values: impl Iterator<Item = i64>) -> Arc<dyn Site> {
        let store = Catalog::new();
        store
            .register(
                "c",
                ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0)),
            )
            .unwrap();
        let mut batch = WriteBatch::new();
        for v in values {
            batch.insert("c", v);
        }
        store.commit(batch).unwrap();
        Arc::new(LocalSite::new(name, Box::new(store)))
    }

    #[test]
    fn global_total_count_is_the_sum_of_member_counts() {
        let global = GlobalCatalog::new(vec![
            site("a", (0..500).map(|v| v % 50)),
            site("b", (0..300).map(|v| 40 + v % 50)),
        ]);
        let total = global.total_count("c").unwrap();
        assert!((total - 800.0).abs() < 1e-6, "total {total}");
        assert_eq!(global.epoch(), 2);
        assert!(global.contains("c"));
        assert!(!global.contains("ghost"));
        assert_eq!(global.spec("c").unwrap(), AlgoSpec::Dc);
        let statuses = global.site_statuses();
        assert_eq!(statuses.len(), 2);
        assert!(statuses
            .iter()
            .all(|(_, s)| matches!(s, SiteStatus::Healthy { epoch: 1 })));
        let stats = global.read_stats();
        assert!(stats.site_probes > 0);
        assert_eq!(stats.site_failures, 0);
        assert_eq!(stats.degraded_reads, 0);
    }

    #[test]
    fn mutations_are_rejected_as_read_only() {
        let global = GlobalCatalog::new(vec![site("a", 0..10)]);
        assert!(matches!(
            global.register(
                "d",
                ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0))
            ),
            Err(CatalogError::ReadOnlyReplica)
        ));
        let mut batch = WriteBatch::new();
        batch.insert("c", 1);
        assert!(matches!(
            global.commit(batch),
            Err(CatalogError::ReadOnlyReplica)
        ));
        assert!(matches!(
            global.apply("c", &[UpdateOp::Insert(1)]),
            Err(CatalogError::ReadOnlyReplica)
        ));
    }

    #[test]
    fn budget_caps_the_composed_bucket_count() {
        let sites = vec![
            site("a", (0..400).map(|v| v % 97)),
            site("b", (0..400).map(|v| 50 + v % 97)),
        ];
        let lossless = GlobalCatalog::new(sites.clone());
        let reduced = GlobalCatalog::new(sites).with_budget(4);
        let full = lossless.snapshot("c").unwrap().spans().len();
        let capped = reduced.snapshot("c").unwrap().spans().len();
        assert!(capped <= 4, "capped {capped}");
        assert!(full >= capped);
        // Mass is preserved by the reduction.
        let t_full = lossless.total_count("c").unwrap();
        let t_capped = reduced.total_count("c").unwrap();
        assert!((t_full - t_capped).abs() < 1e-6);
    }
}
