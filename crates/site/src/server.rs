//! [`SiteServer`] — one durable store served over a localhost socket.
//!
//! The server owns a `TcpListener` on an ephemeral `127.0.0.1` port and
//! a single accept thread; connections are served one at a time, one
//! framed request per response (see the `proto` module). That is exactly
//! the load shape [`RemoteSite`](crate::RemoteSite) generates — a fresh
//! connection per request — and keeps the server simple enough to kill
//! and restart mid-test, which is the failure mode the subsystem
//! exists to exercise.
//!
//! The hosted store is a [`DurableStore`], never a bare catalog: a
//! killed server restarts from its own changelog, and the tail request
//! is answered straight from that changelog directory with a fresh
//! [`TailReader`] per request (the reader is strictly read-only, so
//! concurrent tails cannot disturb the store).

use crate::proto::{Request, Response};
use crate::site::spans_of;
use dh_catalog::durable::{config_from_record, DurableStore};
use dh_catalog::{ColumnStore, WriteBatch};
use dh_wal::tail::{TailReader, TailStatus};
use dh_wal::{read_framed, write_framed, WalRecord};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// How long a connection may sit idle mid-request before the server
/// gives up on it. Generous: the client writes whole requests at once.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Polling rounds a tail request will spend waiting out a torn tail or
/// half-rotated segment before answering with what it has.
const TAIL_ROUNDS: usize = 100;

/// A durable store served over the site wire protocol on a localhost
/// socket. Dropping (or [`stop`](SiteServer::stop)ping) the server
/// closes the listener — in-flight connections die with it, which is
/// precisely how a killed site looks to its peers.
pub struct SiteServer {
    addr: SocketAddr,
    store: Arc<DurableStore>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl SiteServer {
    /// Binds an ephemeral `127.0.0.1` port and starts serving `store`.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn spawn(store: Arc<DurableStore>) -> io::Result<SiteServer> {
        Self::spawn_on(store, ("127.0.0.1", 0))
    }

    /// [`spawn`](SiteServer::spawn) on an explicit address — how a
    /// restarted site comes back where its peers already look for it
    /// (clients hold the address, not the connection, so the next
    /// request simply succeeds again).
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn spawn_on(
        store: Arc<DurableStore>,
        addr: impl std::net::ToSocketAddrs,
    ) -> io::Result<SiteServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            thread::spawn(move || accept_loop(&listener, &store, &stop))
        };
        Ok(SiteServer {
            addr,
            store,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hosted store.
    pub fn store(&self) -> &Arc<DurableStore> {
        &self.store
    }

    /// Stops accepting and joins the accept thread. The port is
    /// released on return; subsequent connects are refused. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SiteServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, store: &Arc<DurableStore>, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // One connection at a time: the client opens a fresh
                // connection per request, so serial service is fair and
                // a wedged peer is bounded by the I/O timeout.
                let _ = serve_connection(stream, store);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(1));
            }
            Err(_) => thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn serve_connection(mut stream: TcpStream, store: &Arc<DurableStore>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    while let Some(payload) = read_framed(&mut stream)? {
        let response = match Request::decode(&payload) {
            Ok(request) => execute(store, request),
            Err(why) => Response::Err(crate::site::SiteError::Protocol(why)),
        };
        write_framed(&mut stream, &response.encode())?;
    }
    Ok(())
}

fn execute(store: &Arc<DurableStore>, request: Request) -> Response {
    match request {
        Request::Epoch => Response::Epoch(store.epoch()),
        Request::Columns => Response::Columns(store.columns()),
        Request::Probe => Response::Probe {
            epoch: store.epoch(),
            columns: store.columns().len() as u64,
        },
        Request::Register(WalRecord::Register { column, config }) => {
            let config = match config_from_record(&config) {
                Ok(config) => config,
                Err(e) => return Response::Err(crate::site::SiteError::Remote(e.to_string())),
            };
            match store.register(&column, config) {
                Ok(()) => Response::Register,
                Err(e) => Response::store_err(&e),
            }
        }
        Request::Commit(WalRecord::Commit { columns, .. }) => {
            let mut batch = WriteBatch::new();
            for (column, ops) in columns {
                batch.extend(&column, ops);
            }
            match store.commit(batch) {
                Ok(epoch) => Response::Commit(epoch),
                Err(e) => Response::store_err(&e),
            }
        }
        // Request::decode only builds Register/Commit from the matching
        // record kinds; anything else is a codec bug.
        Request::Register(_) | Request::Commit(_) => Response::Err(
            crate::site::SiteError::Protocol("record kind mismatch".to_string()),
        ),
        Request::Spans { column, epoch } => {
            let snap = if epoch == 0 {
                store.snapshot(&column)
            } else {
                store.snapshot_set_at(&[&column], epoch).and_then(|set| {
                    set.get(&column)
                        .cloned()
                        .ok_or_else(|| dh_catalog::CatalogError::UnknownColumn(column.clone()))
                })
            };
            match snap {
                Ok(snap) => Response::Spans(spans_of(&snap)),
                Err(e) => Response::store_err(&e),
            }
        }
        Request::Tail { from } => {
            let mut reader = TailReader::new(store.wal_dir(), store.kind().tag());
            reader.seek(from);
            let mut records = Vec::new();
            let mut caught_up = false;
            for _ in 0..TAIL_ROUNDS {
                match reader.poll() {
                    Ok(poll) => {
                        let empty = poll.records.is_empty();
                        records.extend(poll.records);
                        match poll.status {
                            TailStatus::CaughtUp if empty => {
                                caught_up = true;
                                break;
                            }
                            // Drained what was visible; one more round
                            // confirms nothing landed behind the poll.
                            TailStatus::CaughtUp => {}
                            TailStatus::Lost => break,
                        }
                    }
                    Err(e) => return Response::Err(crate::site::SiteError::Remote(e.to_string())),
                }
            }
            Response::Tail(crate::site::SiteTail { records, caught_up })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_catalog::durable::{DurableOptions, StoreKind};
    use dh_catalog::{AlgoSpec, ColumnConfig};
    use dh_core::MemoryBudget;
    use dh_wal::tmp::TempDir;
    use dh_wal::SyncPolicy;

    fn open_store(dir: &TempDir) -> Arc<DurableStore> {
        let options = DurableOptions {
            sync: SyncPolicy::Off,
            ..DurableOptions::default()
        };
        Arc::new(DurableStore::open(dir.path(), StoreKind::Single, options).unwrap())
    }

    #[test]
    fn server_stops_and_releases_its_port() {
        let dir = TempDir::new("site_server_stop");
        let store = open_store(&dir);
        store
            .register(
                "c",
                ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0)),
            )
            .unwrap();
        let mut server = SiteServer::spawn(Arc::clone(&store)).unwrap();
        let addr = server.addr();
        // Live: a raw connect succeeds.
        TcpStream::connect(addr).unwrap();
        server.stop();
        // Stopped: the listener is gone, connects are refused.
        assert!(TcpStream::connect(addr).is_err());
        // The store survives the server.
        assert_eq!(store.columns(), vec!["c".to_string()]);
    }
}
