//! Site-to-site epoch catch-up: replaying a peer's changelog tail onto
//! a rebuilt member until it is bit-identical with the epochs it
//! missed.
//!
//! This is `dh_replica`'s follower replay, one hop out: instead of
//! tailing a changelog *directory*, [`catch_up`] pulls the records over
//! the [`Site::tail`] surface (a [`TailReader`](dh_wal::tail::TailReader)
//! running inside the source site) and applies them with the same
//! idempotent rules — re-read registers and already-applied commits are
//! skipped, an epoch gap stops the replay instead of corrupting the
//! target, and re-shard barriers replay exactly once. The rules are
//! written down as the *catch-up rule* in `docs/GLOBAL.md`.

use crate::site::{Site, SiteError};
use dh_catalog::durable::{config_from_record, plan_from_deltas, strip_policy};
use dh_catalog::{CatalogError, ColumnConfig, ColumnStore, WriteBatch};
use dh_wal::WalRecord;
use std::collections::BTreeMap;

/// What one [`catch_up`] call accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatchUp {
    /// Commits applied to the target (epochs it actually advanced).
    pub applied: u64,
    /// The target's epoch after the replay.
    pub epoch: u64,
    /// `true` if the source reported its changelog fully drained *and*
    /// every pulled record replayed (no gap). `false` means call again:
    /// either more records exist, or pruning outran the pull and the
    /// target needs a fresher base first.
    pub caught_up: bool,
}

/// Replays `source`'s changelog past `from` onto `target`.
///
/// `from` should be the target's current epoch (`target.epoch()`);
/// records at or before it are skipped idempotently, so a conservative
/// (lower) value is safe, merely wasteful.
///
/// # Errors
///
/// Transport and protocol failures from [`Site::tail`] pass through.
/// [`SiteError::Store`] reports a target that rejects a replayed
/// record — including a register record that *contradicts* the
/// target's live config for that column, which is a real divergence
/// and never skipped silently.
pub fn catch_up(
    target: &dyn ColumnStore,
    source: &dyn Site,
    from: u64,
) -> Result<CatchUp, SiteError> {
    let tail = source.tail(from)?;
    let mut applied = 0u64;
    let mut clean = true;
    // Legacy re-shard barriers already replayed this call, so a barrier
    // that lands exactly at the current epoch replays once, not per
    // re-read.
    let mut resharded: BTreeMap<String, u64> = BTreeMap::new();
    // Rebuild ordinals already replayed this call. Rebuilds dedup on
    // the ordinal, not the barrier: rebuilds publish no epoch, so two
    // distinct rebuilds can legitimately share a barrier.
    let mut rebuilt: BTreeMap<String, u64> = BTreeMap::new();
    'replay: for record in tail.records {
        match record {
            WalRecord::Register { column, config } => {
                let config =
                    config_from_record(&config).map_err(|e| SiteError::Remote(e.to_string()))?;
                if target.contains(&column) {
                    check_config_matches(target, &column, &config)?;
                } else {
                    target.register(&column, strip_policy(&config))?;
                }
            }
            WalRecord::Commit { epoch, columns } => {
                let at = target.epoch();
                if epoch <= at {
                    continue; // overlap below the requested epoch
                }
                if epoch != at + 1 {
                    clean = false; // a gap: stop before corrupting
                    break 'replay;
                }
                let mut batch = WriteBatch::new();
                for (column, ops) in columns {
                    batch.extend(&column, ops);
                }
                target.commit(batch)?;
                applied += 1;
            }
            // Legacy: logs written before the elastic rebuild plane; at
            // most one `Reshard` could land per barrier, so the barrier
            // doubles as its identity.
            WalRecord::Reshard { column, barrier } => {
                let at = target.epoch();
                if barrier < at || resharded.get(&column).is_some_and(|&b| barrier <= b) {
                    continue; // already covered by the target's state
                }
                if barrier > at {
                    clean = false;
                    break 'replay;
                }
                target.reshard(&column)?;
                resharded.insert(column, barrier);
            }
            WalRecord::Rebuild {
                column,
                barrier,
                seq,
                shards,
                spec,
                memory_bytes,
                channel,
            } => {
                let at = target.epoch();
                if barrier < at || rebuilt.get(&column).is_some_and(|&s| seq <= s) {
                    // Covered by the target's state — or, at the barrier
                    // itself, a re-read of an ordinal this call already
                    // applied. A *distinct* second rebuild at the same
                    // barrier carries a higher ordinal and must apply.
                    continue;
                }
                if barrier > at {
                    clean = false;
                    break 'replay;
                }
                let plan = plan_from_deltas(shards, spec.as_deref(), memory_bytes, channel)
                    .map_err(|e| SiteError::Remote(e.to_string()))?;
                target.rebuild(&column, plan)?;
                rebuilt.insert(column, seq);
            }
        }
    }
    Ok(CatchUp {
        applied,
        epoch: target.epoch(),
        caught_up: tail.caught_up && clean,
    })
}

/// A register record for a column the target already hosts must agree
/// with the live config — the same contradiction check the follower
/// replay makes, expressed against the store surface.
fn check_config_matches(
    target: &dyn ColumnStore,
    column: &str,
    config: &ColumnConfig,
) -> Result<(), SiteError> {
    let live = target.spec(column)?;
    if live == config.spec {
        Ok(())
    } else {
        Err(SiteError::Store(CatalogError::Durability(format!(
            "register record for '{column}' contradicts the target's algorithm \
             ({:?} vs live {live:?})",
            config.spec
        ))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::SiteServer;
    use crate::site::LocalSite;
    use crate::RemoteSite;
    use dh_catalog::durable::{DurableOptions, DurableStore, StoreKind};
    use dh_catalog::{AlgoSpec, Catalog};
    use dh_core::{MemoryBudget, ReadHistogram};
    use dh_wal::tmp::TempDir;
    use dh_wal::SyncPolicy;
    use std::sync::Arc;

    #[test]
    fn a_fresh_store_catches_up_bit_identically_over_the_wire() {
        let dir = TempDir::new("catchup_wire");
        let options = DurableOptions {
            sync: SyncPolicy::Off,
            ..DurableOptions::default()
        };
        let store = Arc::new(DurableStore::open(dir.path(), StoreKind::Single, options).unwrap());
        store
            .register(
                "c",
                ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0)),
            )
            .unwrap();
        for round in 0..5 {
            let mut batch = WriteBatch::new();
            for v in 0..50 {
                batch.insert("c", (round * 7 + v) % 40);
            }
            store.commit(batch).unwrap();
        }
        let server = SiteServer::spawn(Arc::clone(&store)).unwrap();
        let source = RemoteSite::new("src", server.addr());

        let target = Catalog::new();
        let report = catch_up(&target, &source, 0).unwrap();
        assert!(report.caught_up);
        assert_eq!(report.applied, 5);
        assert_eq!(report.epoch, 5);
        let want = store.snapshot("c").unwrap();
        let got = target.snapshot("c").unwrap();
        assert_eq!(
            want.spans()
                .iter()
                .map(|s| (s.lo.to_bits(), s.hi.to_bits(), s.count.to_bits()))
                .collect::<Vec<_>>(),
            got.spans()
                .iter()
                .map(|s| (s.lo.to_bits(), s.hi.to_bits(), s.count.to_bits()))
                .collect::<Vec<_>>(),
        );

        // Idempotent: replaying from 0 again applies nothing new.
        let again = catch_up(&target, &source, 0).unwrap();
        assert!(again.caught_up);
        assert_eq!(again.applied, 0);
        assert_eq!(again.epoch, 5);
    }

    #[test]
    fn same_barrier_rebuild_stack_catches_up_over_the_wire() {
        use dh_catalog::{RebuildPlan, ShardPlan, ShardedCatalog};

        let dir = TempDir::new("catchup_same_barrier");
        let options = DurableOptions {
            sync: SyncPolicy::Off,
            checkpoint_every: None,
            ..DurableOptions::default()
        };
        let store = Arc::new(DurableStore::open(dir.path(), StoreKind::Sharded, options).unwrap());
        store
            .register(
                "c",
                ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0))
                    .with_seed(3)
                    .with_plan(ShardPlan::new(0, 119, 4).unwrap()),
            )
            .unwrap();
        // Skewed commits, then two shape changes with no commit between
        // them: both rebuild records carry the same barrier and only
        // their ordinals keep them apart during replay.
        for round in 0..5i64 {
            let mut batch = WriteBatch::new();
            for v in 0..32 {
                batch.insert("c", (round * 7 + v) % 40);
            }
            store.commit(batch).unwrap();
        }
        assert!(store.reshard("c").unwrap());
        assert!(store
            .rebuild("c", RebuildPlan::new().with_shards(8))
            .unwrap());
        let mut batch = WriteBatch::new();
        batch.insert("c", 60);
        store.commit(batch).unwrap();

        let server = SiteServer::spawn(Arc::clone(&store)).unwrap();
        let source = RemoteSite::new("src", server.addr());
        let target = ShardedCatalog::new();
        let report = catch_up(&target, &source, 0).unwrap();
        assert!(report.caught_up);
        assert_eq!(report.epoch, store.epoch());
        assert_eq!(
            target.column_shape("c").unwrap().unwrap().shards,
            8,
            "the second same-barrier rebuild was skipped"
        );
        assert_eq!(
            target.shard_load("c").unwrap(),
            store.shard_load("c").unwrap()
        );
        let want = store.snapshot("c").unwrap();
        let got = target.snapshot("c").unwrap();
        assert_eq!(
            want.spans()
                .iter()
                .map(|s| (s.lo.to_bits(), s.hi.to_bits(), s.count.to_bits()))
                .collect::<Vec<_>>(),
            got.spans()
                .iter()
                .map(|s| (s.lo.to_bits(), s.hi.to_bits(), s.count.to_bits()))
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn tailing_a_local_bare_catalog_is_unsupported() {
        let source = LocalSite::new("a", Box::new(Catalog::new()));
        let target = Catalog::new();
        assert!(matches!(
            catch_up(&target, &source, 0),
            Err(SiteError::Unsupported(_))
        ));
    }
}
