//! [`RemoteSite`] — the [`Site`] surface over a localhost socket.
//!
//! Each request opens a fresh connection: a restarted
//! [`SiteServer`](crate::SiteServer) (new process, new accept loop,
//! same store directory) is picked up transparently by the very next
//! request, with no connection-pool invalidation to get right. On
//! localhost the connect is a couple of syscalls; this subsystem's
//! request rate is span pulls per composition, not a hot path.
//!
//! Error mapping is the degradation contract's foundation: connect /
//! send / receive failures become [`SiteError::Unreachable`] (the
//! killed-site shape — compositions degrade), while frames that arrive
//! but do not decode become [`SiteError::Protocol`] (a bug, not an
//! outage — still dropped from composition, but distinguishable).

use crate::proto::{Request, Response};
use crate::site::{Site, SiteError, SiteSpans, SiteStatus, SiteTail};
use dh_catalog::durable::config_to_record;
use dh_catalog::{ColumnConfig, WriteBatch};
use dh_wal::{read_framed, write_framed, WalRecord};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// How long one request may take end-to-end before the site is treated
/// as unreachable.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// A member site reached over the wire protocol (see the `proto`
/// module and `docs/GLOBAL.md`).
#[derive(Debug, Clone)]
pub struct RemoteSite {
    name: String,
    addr: SocketAddr,
}

impl RemoteSite {
    /// A client for the site at `addr` (a
    /// [`SiteServer::addr`](crate::SiteServer::addr)), keyed `name` in
    /// version vectors. No connection is made until the first request.
    pub fn new(name: impl Into<String>, addr: SocketAddr) -> Self {
        RemoteSite {
            name: name.into(),
            addr,
        }
    }

    /// The address requests are sent to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// One request/response exchange on a fresh connection.
    fn call(&self, request: &Request) -> Result<Response, SiteError> {
        let mut stream = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT)
            .map_err(|e| SiteError::Unreachable(format!("{}: connect: {e}", self.name)))?;
        stream
            .set_nodelay(true)
            .and_then(|()| stream.set_read_timeout(Some(IO_TIMEOUT)))
            .and_then(|()| stream.set_write_timeout(Some(IO_TIMEOUT)))
            .map_err(|e| SiteError::Unreachable(format!("{}: setup: {e}", self.name)))?;
        write_framed(&mut stream, &request.encode())
            .map_err(|e| SiteError::Unreachable(format!("{}: send: {e}", self.name)))?;
        let payload = match read_framed(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => {
                return Err(SiteError::Protocol(format!(
                    "{}: connection closed before the response",
                    self.name
                )))
            }
            // A frame that arrived but fails its checksum or length
            // check is a protocol fault; everything else is transport.
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return Err(SiteError::Protocol(format!("{}: {e}", self.name)))
            }
            Err(e) => {
                return Err(SiteError::Unreachable(format!(
                    "{}: receive: {e}",
                    self.name
                )))
            }
        };
        match Response::decode(&payload, request.kind()) {
            Ok(Response::Err(e)) => Err(e),
            Ok(response) => Ok(response),
            Err(why) => Err(SiteError::Protocol(format!("{}: {why}", self.name))),
        }
    }
}

/// The answer arrived, but as the wrong response kind — only possible
/// if the codec desynced, so report it as a protocol fault.
fn unexpected(name: &str, what: &'static str) -> SiteError {
    SiteError::Protocol(format!("{name}: response is not a {what}"))
}

impl Site for RemoteSite {
    fn name(&self) -> &str {
        &self.name
    }

    fn probe(&self) -> SiteStatus {
        match self.call(&Request::Epoch) {
            Ok(Response::Epoch(epoch)) => SiteStatus::Healthy { epoch },
            _ => SiteStatus::Unreachable,
        }
    }

    fn epoch(&self) -> Result<u64, SiteError> {
        match self.call(&Request::Epoch)? {
            Response::Epoch(epoch) => Ok(epoch),
            _ => Err(unexpected(&self.name, "REQ_EPOCH response")),
        }
    }

    fn columns(&self) -> Result<Vec<String>, SiteError> {
        match self.call(&Request::Columns)? {
            Response::Columns(names) => Ok(names),
            _ => Err(unexpected(&self.name, "REQ_COLUMNS response")),
        }
    }

    fn register(&self, column: &str, config: ColumnConfig) -> Result<(), SiteError> {
        // The request travels as the exact WAL record the server-side
        // replay would log for this registration.
        let record = WalRecord::Register {
            column: column.to_string(),
            config: config_to_record(&config),
        };
        match self.call(&Request::Register(record))? {
            Response::Register => Ok(()),
            _ => Err(unexpected(&self.name, "REQ_REGISTER response")),
        }
    }

    fn commit(&self, batch: WriteBatch) -> Result<u64, SiteError> {
        let columns = batch
            .columns()
            .map(str::to_string)
            .collect::<Vec<_>>()
            .into_iter()
            .map(|column| {
                let ops = batch.ops(&column).unwrap_or_default().to_vec();
                (column, ops)
            })
            .collect();
        // Epoch 0 is a placeholder; the server's store assigns the real
        // epoch at commit and returns it.
        let record = WalRecord::Commit { epoch: 0, columns };
        match self.call(&Request::Commit(record))? {
            Response::Commit(epoch) => Ok(epoch),
            _ => Err(unexpected(&self.name, "REQ_COMMIT response")),
        }
    }

    fn snapshot_spans(&self, column: &str, at: Option<u64>) -> Result<SiteSpans, SiteError> {
        let request = Request::Spans {
            column: column.to_string(),
            epoch: at.unwrap_or(0),
        };
        match self.call(&request)? {
            Response::Spans(spans) => Ok(spans),
            _ => Err(unexpected(&self.name, "REQ_SPANS response")),
        }
    }

    fn tail(&self, from: u64) -> Result<SiteTail, SiteError> {
        match self.call(&Request::Tail { from })? {
            Response::Tail(tail) => Ok(tail),
            _ => Err(unexpected(&self.name, "REQ_TAIL response")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_address_is_unreachable_not_an_error_in_probe() {
        // Bind-and-drop yields a port nothing listens on.
        let addr = {
            let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
            listener.local_addr().unwrap()
        };
        let site = RemoteSite::new("gone", addr);
        assert_eq!(site.probe(), SiteStatus::Unreachable);
        assert!(matches!(site.epoch(), Err(SiteError::Unreachable(_))));
    }
}
