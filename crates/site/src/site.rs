//! The [`Site`] trait — the minimal estimator surface a member site
//! exposes to a global composition — plus the in-process backend.

use dh_catalog::{CatalogError, ColumnConfig, ColumnStore, WriteBatch};
use dh_core::{BucketSpan, ReadHistogram};
use dh_wal::WalRecord;
use std::fmt;
use std::sync::Arc;

/// Why a site interaction failed.
#[derive(Debug)]
pub enum SiteError {
    /// The site could not be reached at all (connect, send, or receive
    /// failed at the transport). The shape a killed site presents.
    Unreachable(String),
    /// The site answered, but with bytes that do not decode as the
    /// protocol (framing, checksum, or codec failure).
    Protocol(String),
    /// The site executed the request and reported a failure of its own
    /// that has no typed mapping (its message, verbatim).
    Remote(String),
    /// The site's store rejected the request with a typed catalog
    /// error — preserved across the wire for the cases composition
    /// logic branches on ([`CatalogError::UnknownColumn`],
    /// [`CatalogError::EpochEvicted`]).
    Store(CatalogError),
    /// The backend does not implement this part of the surface (e.g.
    /// tailing an in-process store with no changelog).
    Unsupported(&'static str),
}

impl fmt::Display for SiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SiteError::Unreachable(why) => write!(f, "site unreachable: {why}"),
            SiteError::Protocol(why) => write!(f, "site protocol error: {why}"),
            SiteError::Remote(why) => write!(f, "site-reported error: {why}"),
            SiteError::Store(e) => write!(f, "site store error: {e}"),
            SiteError::Unsupported(what) => write!(f, "site does not support {what}"),
        }
    }
}

impl std::error::Error for SiteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SiteError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CatalogError> for SiteError {
    fn from(e: CatalogError) -> Self {
        SiteError::Store(e)
    }
}

/// One health probe's verdict on a member site, as a global read
/// reports it (see `docs/GLOBAL.md` for the degradation contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteStatus {
    /// The site answered and its epoch clock is at or past everything
    /// the composition has ever observed from it.
    Healthy {
        /// The site's published epoch at the probe.
        epoch: u64,
    },
    /// The site answered, but its epoch clock is *behind* the version
    /// vector — the shape of a site rebuilt from scratch that has not
    /// caught up yet. Dropped from composition until it converges.
    Stale {
        /// The site's published epoch at the probe.
        epoch: u64,
        /// How many epochs behind the version-vector entry it is — the
        /// staleness bound reported instead of failing the read.
        behind: u64,
    },
    /// The site could not be reached.
    Unreachable,
}

/// One column's rendered state pulled from a site: the site-local
/// bookkeeping plus the spans themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteSpans {
    /// The site epoch the spans are pinned to.
    pub epoch: u64,
    /// The column's batch checkpoint count at that epoch.
    pub checkpoint: u64,
    /// Updates folded into the column at that epoch.
    pub updates: u64,
    /// The site's algorithm legend label for the column.
    pub label: String,
    /// The rendered spans, sorted and disjoint.
    pub spans: Vec<BucketSpan>,
}

/// One changelog tail pull from a site (see [`Site::tail`]).
#[derive(Debug)]
pub struct SiteTail {
    /// Records visible past the requested epoch, in append (= epoch)
    /// order. May re-read records at or before the requested epoch
    /// (segment granularity); replay must skip them idempotently.
    pub records: Vec<WalRecord>,
    /// `true` if the site's changelog was fully drained; `false` if
    /// pruning ran past the requested epoch (the `TailStatus::Lost`
    /// shape) — the caller must restart from a fresher base.
    pub caught_up: bool,
}

/// The minimal estimator surface of one member site.
///
/// Object-safe by design: a [`GlobalCatalog`](crate::GlobalCatalog)
/// holds `Arc<dyn Site>` and treats in-process and socket-remote
/// members identically. Every method that crosses a transport can fail
/// with [`SiteError::Unreachable`]; composition logic treats that as a
/// degraded member, never a failed read.
pub trait Site: Send + Sync {
    /// The site's name — the version-vector key, stable across restarts.
    fn name(&self) -> &str;

    /// Health probe: the site's epoch if it answers, without judging
    /// staleness (that is the composition's call — it owns the version
    /// vector).
    fn probe(&self) -> SiteStatus;

    /// The site's published epoch clock.
    ///
    /// # Errors
    /// [`SiteError::Unreachable`] / [`SiteError::Protocol`] on
    /// transport failure.
    fn epoch(&self) -> Result<u64, SiteError>;

    /// The site's registered column names, sorted.
    ///
    /// # Errors
    /// [`SiteError::Unreachable`] / [`SiteError::Protocol`] on
    /// transport failure.
    fn columns(&self) -> Result<Vec<String>, SiteError>;

    /// Registers `column` on the site.
    ///
    /// # Errors
    /// [`SiteError::Store`] with the site's typed rejection (duplicate
    /// column, invalid plan), or a transport error.
    fn register(&self, column: &str, config: ColumnConfig) -> Result<(), SiteError>;

    /// Commits `batch` on the site, returning the epoch it published as.
    ///
    /// # Errors
    /// [`SiteError::Store`] with the site's typed rejection, or a
    /// transport error.
    fn commit(&self, batch: WriteBatch) -> Result<u64, SiteError>;

    /// Pulls `column`'s rendered spans, pinned to site epoch `at` —
    /// or to the site's current epoch when `at` is `None`.
    ///
    /// # Errors
    /// [`SiteError::Store`] with [`CatalogError::UnknownColumn`] if the
    /// site does not host the column, or
    /// [`CatalogError::EpochEvicted`] if the requested epoch is no
    /// longer (or not yet) servable; transport errors as usual.
    fn snapshot_spans(&self, column: &str, at: Option<u64>) -> Result<SiteSpans, SiteError>;

    /// Pulls the site's changelog records past epoch `from` — the
    /// [`TailReader`](dh_wal::tail::TailReader) semantics, one hop out.
    /// What a rebuilt peer replays to catch up ([`crate::catch_up`]).
    ///
    /// # Errors
    /// [`SiteError::Unsupported`] for backends with no changelog (the
    /// default); transport errors as usual.
    fn tail(&self, from: u64) -> Result<SiteTail, SiteError> {
        let _ = from;
        Err(SiteError::Unsupported("changelog tailing"))
    }
}

/// An in-process member site: any [`ColumnStore`] adapted to the
/// [`Site`] surface. Always reachable; its probe is the store's own
/// epoch clock.
pub struct LocalSite {
    name: String,
    store: Arc<dyn ColumnStore>,
}

impl LocalSite {
    /// Wraps an owned store.
    pub fn new(name: impl Into<String>, store: Box<dyn ColumnStore>) -> Self {
        Self::shared(name, Arc::from(store))
    }

    /// Wraps a store shared with other users in this process (e.g. the
    /// writer that keeps committing to it while the composition reads).
    pub fn shared(name: impl Into<String>, store: Arc<dyn ColumnStore>) -> Self {
        Self {
            name: name.into(),
            store,
        }
    }

    /// The wrapped store.
    pub fn store(&self) -> &Arc<dyn ColumnStore> {
        &self.store
    }
}

/// Renders one snapshot into the wire-shaped [`SiteSpans`].
pub(crate) fn spans_of(snap: &dh_catalog::Snapshot) -> SiteSpans {
    SiteSpans {
        epoch: snap.epoch(),
        checkpoint: snap.checkpoint(),
        updates: snap.updates(),
        label: snap.label().to_string(),
        spans: snap.spans(),
    }
}

impl Site for LocalSite {
    fn name(&self) -> &str {
        &self.name
    }

    fn probe(&self) -> SiteStatus {
        SiteStatus::Healthy {
            epoch: self.store.epoch(),
        }
    }

    fn epoch(&self) -> Result<u64, SiteError> {
        Ok(self.store.epoch())
    }

    fn columns(&self) -> Result<Vec<String>, SiteError> {
        Ok(self.store.columns())
    }

    fn register(&self, column: &str, config: ColumnConfig) -> Result<(), SiteError> {
        Ok(self.store.register(column, config)?)
    }

    fn commit(&self, batch: WriteBatch) -> Result<u64, SiteError> {
        Ok(self.store.commit(batch)?)
    }

    fn snapshot_spans(&self, column: &str, at: Option<u64>) -> Result<SiteSpans, SiteError> {
        let snap = match at {
            None => self.store.snapshot(column)?,
            Some(epoch) => {
                let set = self.store.snapshot_set_at(&[column], epoch)?;
                set.get(column)
                    .ok_or_else(|| CatalogError::UnknownColumn(column.to_string()))?
                    .clone()
            }
        };
        Ok(spans_of(&snap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_catalog::{AlgoSpec, Catalog};
    use dh_core::MemoryBudget;

    fn local() -> LocalSite {
        let store = Catalog::new();
        store
            .register(
                "c",
                ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0)),
            )
            .unwrap();
        LocalSite::new("a", Box::new(store))
    }

    #[test]
    fn local_site_round_trips_the_store_surface() {
        let site = local();
        assert_eq!(site.name(), "a");
        assert_eq!(site.epoch().unwrap(), 0);
        assert_eq!(site.columns().unwrap(), vec!["c".to_string()]);
        let mut batch = WriteBatch::new();
        for v in 0..100 {
            batch.insert("c", v % 10);
        }
        assert_eq!(site.commit(batch).unwrap(), 1);
        assert_eq!(site.probe(), SiteStatus::Healthy { epoch: 1 });

        let current = site.snapshot_spans("c", None).unwrap();
        assert_eq!(current.epoch, 1);
        assert_eq!(current.updates, 100);
        let pinned = site.snapshot_spans("c", Some(1)).unwrap();
        assert_eq!(pinned.spans, current.spans);

        // An in-memory store retains only its current epoch.
        assert!(matches!(
            site.snapshot_spans("c", Some(9)),
            Err(SiteError::Store(CatalogError::EpochEvicted(9)))
        ));
        assert!(matches!(
            site.snapshot_spans("ghost", None),
            Err(SiteError::Store(CatalogError::UnknownColumn(_)))
        ));
        // No changelog behind a bare catalog: tailing is unsupported.
        assert!(matches!(site.tail(0), Err(SiteError::Unsupported(_))));
    }
}
