//! The site wire protocol: request/response messages over one
//! `TcpStream`, each message a single `[len][crc32][payload]` frame
//! written with [`dh_wal::write_framed`] — the WAL record framing,
//! verbatim, applied to a socket (`docs/GLOBAL.md` has the layout).
//!
//! Request payloads are `[kind: u8][body]`. Register and commit bodies
//! embed the *exact* [`WalRecord`] frame their replay would log
//! (`encode_frame` bytes, decoded server-side with the same
//! [`read_frame`] the segment layer uses), so the codec is reused
//! rather than paraphrased. Response payloads are `[1][kind][body]` on
//! success — the kind byte echoes the request, so a desynced stream is
//! caught as a protocol error, not a misread — or `[0][code][detail]`
//! on failure, where the code preserves the two typed store errors
//! composition logic branches on (unknown column, epoch evicted).

use crate::site::{SiteError, SiteSpans, SiteTail};
use dh_catalog::CatalogError;
use dh_core::BucketSpan;
use dh_wal::record::{read_frame, Frame};
use dh_wal::{Reader, WalRecord, Writer};

pub(crate) const REQ_EPOCH: u8 = 1;
pub(crate) const REQ_COLUMNS: u8 = 2;
pub(crate) const REQ_REGISTER: u8 = 3;
pub(crate) const REQ_COMMIT: u8 = 4;
pub(crate) const REQ_SPANS: u8 = 5;
pub(crate) const REQ_PROBE: u8 = 6;
pub(crate) const REQ_TAIL: u8 = 7;

const STATUS_ERR: u8 = 0;
const STATUS_OK: u8 = 1;

const ERR_OTHER: u8 = 0;
const ERR_UNKNOWN_COLUMN: u8 = 1;
const ERR_EPOCH_EVICTED: u8 = 2;

/// One decoded request.
#[derive(Debug)]
pub(crate) enum Request {
    Epoch,
    Columns,
    /// Carries a [`WalRecord::Register`].
    Register(WalRecord),
    /// Carries a [`WalRecord::Commit`] (its epoch field is ignored; the
    /// server assigns the real one).
    Commit(WalRecord),
    /// `epoch == 0` means "the site's current epoch" (epoch 0 itself is
    /// the pre-first-commit state every column serves identically).
    Spans {
        column: String,
        epoch: u64,
    },
    Probe,
    Tail {
        from: u64,
    },
}

impl Request {
    pub(crate) fn kind(&self) -> u8 {
        match self {
            Request::Epoch => REQ_EPOCH,
            Request::Columns => REQ_COLUMNS,
            Request::Register(_) => REQ_REGISTER,
            Request::Commit(_) => REQ_COMMIT,
            Request::Spans { .. } => REQ_SPANS,
            Request::Probe => REQ_PROBE,
            Request::Tail { .. } => REQ_TAIL,
        }
    }

    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(self.kind());
        match self {
            Request::Epoch | Request::Columns | Request::Probe => {}
            Request::Register(record) | Request::Commit(record) => {
                let mut buf = w.into_bytes();
                buf.extend_from_slice(&record.encode_frame());
                return buf;
            }
            Request::Spans { column, epoch } => {
                w.str_(column);
                w.u64(*epoch);
            }
            Request::Tail { from } => w.u64(*from),
        }
        w.into_bytes()
    }

    pub(crate) fn decode(payload: &[u8]) -> Result<Request, String> {
        let kind = *payload.first().ok_or("empty request")?;
        let body = &payload[1..];
        let request = match kind {
            REQ_EPOCH | REQ_COLUMNS | REQ_PROBE => {
                if !body.is_empty() {
                    return Err(format!("unexpected body on request kind {kind}"));
                }
                match kind {
                    REQ_EPOCH => Request::Epoch,
                    REQ_COLUMNS => Request::Columns,
                    _ => Request::Probe,
                }
            }
            REQ_REGISTER | REQ_COMMIT => {
                let record = decode_embedded_record(body)?;
                match (kind, &record) {
                    (REQ_REGISTER, WalRecord::Register { .. }) => Request::Register(record),
                    (REQ_COMMIT, WalRecord::Commit { .. }) => Request::Commit(record),
                    _ => return Err(format!("record kind mismatch on request kind {kind}")),
                }
            }
            REQ_SPANS => {
                let mut r = Reader::new(body);
                let column = r.str_()?;
                let epoch = r.u64()?;
                r.finish()?;
                Request::Spans { column, epoch }
            }
            REQ_TAIL => {
                let mut r = Reader::new(body);
                let from = r.u64()?;
                r.finish()?;
                Request::Tail { from }
            }
            other => return Err(format!("unknown request kind {other}")),
        };
        Ok(request)
    }
}

/// One decoded response.
#[derive(Debug)]
pub(crate) enum Response {
    Err(SiteError),
    Epoch(u64),
    Columns(Vec<String>),
    Register,
    Commit(u64),
    Spans(SiteSpans),
    Probe { epoch: u64, columns: u64 },
    Tail(SiteTail),
}

impl Response {
    fn kind(&self) -> u8 {
        match self {
            Response::Err(_) => STATUS_ERR,
            Response::Epoch(_) => REQ_EPOCH,
            Response::Columns(_) => REQ_COLUMNS,
            Response::Register => REQ_REGISTER,
            Response::Commit(_) => REQ_COMMIT,
            Response::Spans(_) => REQ_SPANS,
            Response::Probe { .. } => REQ_PROBE,
            Response::Tail(_) => REQ_TAIL,
        }
    }

    /// The error response for a store-side rejection, preserving the
    /// typed cases the composition branches on.
    pub(crate) fn store_err(e: &CatalogError) -> Response {
        Response::Err(SiteError::Store(match e {
            CatalogError::UnknownColumn(c) => CatalogError::UnknownColumn(c.clone()),
            CatalogError::EpochEvicted(epoch) => CatalogError::EpochEvicted(*epoch),
            other => return Response::Err(SiteError::Remote(other.to_string())),
        }))
    }

    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Response::Err(e) => {
                w.u8(STATUS_ERR);
                match e {
                    SiteError::Store(CatalogError::UnknownColumn(c)) => {
                        w.u8(ERR_UNKNOWN_COLUMN);
                        w.str_(c);
                    }
                    SiteError::Store(CatalogError::EpochEvicted(epoch)) => {
                        w.u8(ERR_EPOCH_EVICTED);
                        w.u64(*epoch);
                    }
                    other => {
                        w.u8(ERR_OTHER);
                        w.str_(&other.to_string());
                    }
                }
            }
            ok => {
                w.u8(STATUS_OK);
                w.u8(ok.kind());
                match ok {
                    Response::Epoch(epoch) | Response::Commit(epoch) => w.u64(*epoch),
                    Response::Columns(names) => {
                        w.u32(names.len() as u32);
                        for name in names {
                            w.str_(name);
                        }
                    }
                    Response::Register => {}
                    Response::Spans(spans) => {
                        w.u64(spans.epoch);
                        w.u64(spans.checkpoint);
                        w.u64(spans.updates);
                        w.str_(&spans.label);
                        w.u32(spans.spans.len() as u32);
                        for s in &spans.spans {
                            w.f64(s.lo);
                            w.f64(s.hi);
                            w.f64(s.count);
                        }
                    }
                    Response::Probe { epoch, columns } => {
                        w.u64(*epoch);
                        w.u64(*columns);
                    }
                    Response::Tail(tail) => {
                        w.u8(u8::from(tail.caught_up));
                        w.u32(tail.records.len() as u32);
                        let mut buf = w.into_bytes();
                        for record in &tail.records {
                            buf.extend_from_slice(&record.encode_frame());
                        }
                        return buf;
                    }
                    Response::Err(_) => unreachable!("handled above"),
                }
            }
        }
        w.into_bytes()
    }

    /// Decodes a response to a request of kind `expect` — a mismatched
    /// echo byte means the stream desynced and is a protocol error.
    pub(crate) fn decode(payload: &[u8], expect: u8) -> Result<Response, String> {
        let mut r = Reader::new(payload);
        match r.u8()? {
            STATUS_ERR => {
                let e = match r.u8()? {
                    ERR_UNKNOWN_COLUMN => SiteError::Store(CatalogError::UnknownColumn(r.str_()?)),
                    ERR_EPOCH_EVICTED => SiteError::Store(CatalogError::EpochEvicted(r.u64()?)),
                    _ => SiteError::Remote(r.str_()?),
                };
                r.finish()?;
                Ok(Response::Err(e))
            }
            STATUS_OK => {
                let kind = r.u8()?;
                if kind != expect {
                    return Err(format!("response kind {kind} answers request {expect}"));
                }
                let response = match kind {
                    REQ_EPOCH => Response::Epoch(r.u64()?),
                    REQ_COMMIT => Response::Commit(r.u64()?),
                    REQ_COLUMNS => {
                        let n = r.u32()? as usize;
                        let mut names = Vec::with_capacity(n.min(1 << 16));
                        for _ in 0..n {
                            names.push(r.str_()?);
                        }
                        Response::Columns(names)
                    }
                    REQ_REGISTER => Response::Register,
                    REQ_SPANS => {
                        let epoch = r.u64()?;
                        let checkpoint = r.u64()?;
                        let updates = r.u64()?;
                        let label = r.str_()?;
                        let n = r.u32()? as usize;
                        let mut spans = Vec::with_capacity(n.min(1 << 16));
                        for _ in 0..n {
                            let lo = r.f64()?;
                            let hi = r.f64()?;
                            let count = r.f64()?;
                            spans.push(BucketSpan::new(lo, hi, count));
                        }
                        Response::Spans(SiteSpans {
                            epoch,
                            checkpoint,
                            updates,
                            label,
                            spans,
                        })
                    }
                    REQ_PROBE => Response::Probe {
                        epoch: r.u64()?,
                        columns: r.u64()?,
                    },
                    REQ_TAIL => {
                        let caught_up = r.u8()? != 0;
                        let n = r.u32()? as usize;
                        // The record frames trail the fixed-size prefix
                        // (status + kind + caught_up + count = 7 bytes);
                        // walk them with the segment layer's own reader.
                        let buf = &payload[7..];
                        let mut at = 0;
                        let mut records = Vec::with_capacity(n.min(1 << 16));
                        for _ in 0..n {
                            match read_frame(buf, at) {
                                Frame::Record { record, next } => {
                                    records.push(record);
                                    at = next;
                                }
                                other => {
                                    return Err(format!("bad embedded record frame: {other:?}"))
                                }
                            }
                        }
                        if at != buf.len() {
                            return Err(format!("{} trailing bytes after tail", buf.len() - at));
                        }
                        return Ok(Response::Tail(SiteTail { records, caught_up }));
                    }
                    other => return Err(format!("unknown response kind {other}")),
                };
                r.finish()?;
                Ok(response)
            }
            other => Err(format!("unknown response status {other}")),
        }
    }
}

/// Decodes one embedded `encode_frame` byte run that must span the
/// whole buffer.
fn decode_embedded_record(buf: &[u8]) -> Result<WalRecord, String> {
    match read_frame(buf, 0) {
        Frame::Record { record, next } if next == buf.len() => Ok(record),
        Frame::Record { next, .. } => Err(format!("{} trailing bytes", buf.len() - next)),
        other => Err(format!("bad embedded record frame: {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dh_core::UpdateOp;

    fn round_trip_request(req: Request) -> Request {
        Request::decode(&req.encode()).unwrap()
    }

    fn round_trip_response(resp: Response, expect: u8) -> Response {
        Response::decode(&resp.encode(), expect).unwrap()
    }

    #[test]
    fn requests_round_trip() {
        assert!(matches!(round_trip_request(Request::Epoch), Request::Epoch));
        assert!(matches!(round_trip_request(Request::Probe), Request::Probe));
        match round_trip_request(Request::Spans {
            column: "age".into(),
            epoch: 7,
        }) {
            Request::Spans { column, epoch } => {
                assert_eq!(column, "age");
                assert_eq!(epoch, 7);
            }
            other => panic!("wrong request: {other:?}"),
        }
        match round_trip_request(Request::Tail { from: 41 }) {
            Request::Tail { from } => assert_eq!(from, 41),
            other => panic!("wrong request: {other:?}"),
        }
        let commit = WalRecord::Commit {
            epoch: 0,
            columns: vec![(
                "c".to_string(),
                vec![UpdateOp::Insert(3), UpdateOp::Delete(9)],
            )],
        };
        match round_trip_request(Request::Commit(commit.clone())) {
            Request::Commit(record) => assert_eq!(record, commit),
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn responses_round_trip() {
        match round_trip_response(Response::Epoch(9), REQ_EPOCH) {
            Response::Epoch(e) => assert_eq!(e, 9),
            other => panic!("wrong response: {other:?}"),
        }
        match round_trip_response(Response::Columns(vec!["a".into(), "b".into()]), REQ_COLUMNS) {
            Response::Columns(names) => assert_eq!(names, ["a", "b"]),
            other => panic!("wrong response: {other:?}"),
        }
        let spans = SiteSpans {
            epoch: 3,
            checkpoint: 1,
            updates: 250,
            label: "DC".into(),
            spans: vec![
                BucketSpan::new(0.0, 4.5, 12.25),
                BucketSpan::new(4.5, 9.0, 3.5),
            ],
        };
        match round_trip_response(Response::Spans(spans.clone()), REQ_SPANS) {
            Response::Spans(got) => assert_eq!(got, spans),
            other => panic!("wrong response: {other:?}"),
        }
        let tail = SiteTail {
            records: vec![
                WalRecord::Commit {
                    epoch: 4,
                    columns: vec![("c".to_string(), vec![UpdateOp::Insert(1)])],
                },
                WalRecord::Commit {
                    epoch: 5,
                    columns: vec![("c".to_string(), vec![UpdateOp::Delete(1)])],
                },
            ],
            caught_up: true,
        };
        match round_trip_response(Response::Tail(tail), REQ_TAIL) {
            Response::Tail(got) => {
                assert!(got.caught_up);
                assert_eq!(got.records.len(), 2);
                assert!(matches!(
                    &got.records[1],
                    WalRecord::Commit { epoch: 5, .. }
                ));
            }
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn typed_errors_survive_the_wire() {
        let unknown = Response::store_err(&CatalogError::UnknownColumn("ghost".into()));
        match round_trip_response(unknown, REQ_SPANS) {
            Response::Err(SiteError::Store(CatalogError::UnknownColumn(c))) => {
                assert_eq!(c, "ghost");
            }
            other => panic!("wrong response: {other:?}"),
        }
        let evicted = Response::store_err(&CatalogError::EpochEvicted(12));
        match round_trip_response(evicted, REQ_SPANS) {
            Response::Err(SiteError::Store(CatalogError::EpochEvicted(e))) => assert_eq!(e, 12),
            other => panic!("wrong response: {other:?}"),
        }
        let generic = Response::store_err(&CatalogError::ReadOnlyReplica);
        match round_trip_response(generic, REQ_COMMIT) {
            Response::Err(SiteError::Remote(msg)) => assert!(msg.contains("read-only")),
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn kind_echo_mismatch_is_a_protocol_error() {
        let bytes = Response::Epoch(1).encode();
        assert!(Response::decode(&bytes, REQ_SPANS).is_err());
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[99]).is_err());
    }
}
