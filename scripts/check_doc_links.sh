#!/usr/bin/env bash
# Checks that every relative markdown link in the repo docs points at a
# file or directory that exists (anchors are stripped; http(s) links are
# skipped). Run from anywhere; exits non-zero listing broken links.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
# The doc set under the link gate: top-level docs plus everything under
# docs/, recursively (a flat docs/*.md glob would silently skip files in
# subdirectories — READ_PATH.md-style contract docs must not escape the
# gate by moving into one).
files=(README.md ARCHITECTURE.md PAPER.md ROADMAP.md)
while IFS= read -r f; do
    files+=("$f")
done < <(find docs -name '*.md' -type f | sort)

for f in "${files[@]}"; do
    [ -f "$f" ] || { echo "missing doc file: $f" >&2; fail=1; continue; }
    dir=$(dirname "$f")
    # Inline ](target) links plus reference-style "[label]: target"
    # definitions, tolerating multiple links per line.
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|\#*|'') continue ;;
        esac
        path="${target%%#*}"           # drop the anchor, keep the path
        [ -n "$path" ] || continue
        case "$path" in
            /*) resolved=".$path" ;;   # absolute links resolve from repo root
            *)  resolved="$dir/$path" ;;
        esac
        if [ ! -e "$resolved" ]; then
            echo "$f: broken link -> $target" >&2
            fail=1
        fi
    done < <(
        grep -o ']([^)]*)' "$f" | sed 's/^](//; s/)$//'
        sed -n 's/^\[[^]]*\]:[[:space:]]*//p' "$f" | awk '{print $1}'
    )
done

if [ "$fail" -ne 0 ]; then
    echo "doc link check failed" >&2
    exit 1
fi
echo "doc links OK (${#files[@]} files)"
