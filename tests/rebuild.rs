//! Elastic rebuild plane: `ColumnStore::rebuild` changes shard count,
//! algorithm, and memory budget online behind the epoch barrier, and a
//! migration must be **faithful** — exact (integer) mass conservation
//! from the largest-remainder re-ingestion, and an estimate quality in
//! the same KS band as building the target algorithm from scratch on
//! the identical stream. A rebuild is a projection of the observed
//! distribution, not a reset.
//!
//! (Durability of shape changes is covered in `tests/durability.rs`,
//! replication in `tests/replica_parity.rs`.)

use dynamic_histograms::core::{HistogramCdf, ReadHistogram, UpdateOp};
use dynamic_histograms::prelude::*;
use proptest::prelude::*;

const DOMAIN: (i64, i64) = (0, 499);

fn sharded(spec: AlgoSpec, shards: usize, seed: u64) -> ShardedCatalog {
    let cat = ShardedCatalog::new();
    let plan = ShardPlan::new(DOMAIN.0, DOMAIN.1, shards).unwrap();
    cat.register(
        "c",
        ColumnConfig::new(spec, MemoryBudget::from_kb(1.0))
            .with_seed(seed)
            .with_plan(plan),
    )
    .unwrap();
    cat
}

fn cdf(cat: &ShardedCatalog) -> HistogramCdf {
    HistogramCdf::from_spans(cat.snapshot("c").unwrap().spans().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Migration fidelity: for any stream and any (A, B) algorithm
    /// pair, `rebuild(with_spec(B))` on a store built under A conserves
    /// the total mass exactly (the largest-remainder re-ingestion
    /// inserts exactly `round(total)` ops) and lands within a KS band
    /// of a store that ran B on the same stream from the start.
    #[test]
    fn migrating_algorithms_conserves_mass_and_distribution(
        values in prop::collection::vec(DOMAIN.0..DOMAIN.1 + 1, 200..600),
        seed in any::<u64>(),
        pair in 0usize..6,
    ) {
        let specs = [AlgoSpec::Dc, AlgoSpec::Dvo, AlgoSpec::Dado];
        let from = specs[pair / 2];
        let to = specs[(pair / 2 + 1 + pair % 2) % 3];

        let stream = UpdateStream::build(&values, WorkloadKind::RandomInsertions, seed);
        let migrated = sharded(from, 4, seed);
        let scratch = sharded(to, 4, seed);
        for chunk in stream.ops().chunks(128) {
            migrated.apply("c", chunk).unwrap();
            scratch.apply("c", chunk).unwrap();
        }

        prop_assert!(migrated.rebuild("c", RebuildPlan::new().with_spec(to)).unwrap());
        let shape = migrated.column_shape("c").unwrap().unwrap();
        prop_assert_eq!(shape.spec, to);

        // Exact conservation: an integer stream comes through a rebuild
        // with its integer mass, not a resampled approximation.
        let total = migrated.total_count("c").unwrap();
        prop_assert!(
            (total - values.len() as f64).abs() < 1e-6,
            "rebuild leaked mass: {} != {}", total, values.len()
        );

        // Fidelity: the migrated store tracks the from-scratch build of
        // the same algorithm within a KS band. The rebuild re-ingests
        // *composed spans* (already smoothed by A), so it cannot be
        // bit-identical — but it must describe the same distribution.
        let d = ks_between(&cdf(&migrated), &cdf(&scratch));
        prop_assert!(
            d <= 0.10,
            "migrated {:?}→{:?} strays from scratch-built {:?}: KS {:.4}",
            from, to, to, d
        );
    }

    /// Shard-count elasticity: growing and then shrinking `k` conserves
    /// mass exactly at every step and the live shape tracks the plan.
    #[test]
    fn growing_and_shrinking_shards_conserves_mass(
        values in prop::collection::vec(DOMAIN.0..DOMAIN.1 + 1, 100..400),
        seed in any::<u64>(),
        grow in 5usize..16,
        shrink in 1usize..4,
    ) {
        let cat = sharded(AlgoSpec::Dc, 4, seed);
        let ops: Vec<UpdateOp> = values.iter().map(|&v| UpdateOp::Insert(v)).collect();
        cat.apply("c", &ops).unwrap();
        for k in [grow, shrink] {
            cat.rebuild("c", RebuildPlan::new().with_shards(k)).unwrap();
            let shape = cat.column_shape("c").unwrap().unwrap();
            prop_assert_eq!(shape.shards, k);
            let total = cat.total_count("c").unwrap();
            prop_assert!(
                (total - values.len() as f64).abs() < 1e-6,
                "k={}: mass {} != {}", k, total, values.len()
            );
        }
    }
}

/// A full combined rebuild — new `k`, new algorithm, new budget, new
/// ingestion design in one barrier — lands with every delta applied
/// and the mass intact; the registered spec stays frozen by contract.
#[test]
fn combined_rebuild_applies_every_delta_atomically() {
    let cat = sharded(AlgoSpec::Dc, 4, 11);
    let ops: Vec<UpdateOp> = (0..2_000).map(|i| UpdateOp::Insert(i * 7 % 500)).collect();
    cat.apply("c", &ops).unwrap();

    assert!(cat
        .rebuild(
            "c",
            RebuildPlan::new()
                .with_shards(12)
                .with_spec(AlgoSpec::Dado)
                .with_memory(MemoryBudget::from_kb(2.0))
                .with_ingest_mode(IngestMode::Channel),
        )
        .unwrap());

    let shape = cat.column_shape("c").unwrap().unwrap();
    assert_eq!(shape.shards, 12);
    assert_eq!(shape.spec, AlgoSpec::Dado);
    assert_eq!(shape.memory, MemoryBudget::from_kb(2.0));
    assert_eq!(shape.ingest_mode, IngestMode::Channel);
    assert_eq!(shape.domain, DOMAIN);
    // The registration spec is the frozen contract; the live shape is
    // the accessor for what is actually serving.
    assert_eq!(cat.spec("c").unwrap(), AlgoSpec::Dc);
    assert!((cat.total_count("c").unwrap() - 2_000.0).abs() < 1e-6);

    // The rebuilt store keeps ingesting (through the channel design)
    // and reading.
    cat.apply("c", &ops).unwrap();
    assert!((cat.total_count("c").unwrap() - 4_000.0).abs() < 1e-6);
}

/// An empty plan is a pure border rebalance — `reshard()` remains the
/// thin wrapper over it — and degenerate plans are typed errors.
#[test]
fn empty_plans_rebalance_and_degenerate_plans_are_rejected() {
    let cat = sharded(AlgoSpec::Dc, 8, 3);
    // Maximal skew: everything in the first equal-width shard.
    let ops: Vec<UpdateOp> = (0..1_024).map(|i| UpdateOp::Insert(i % 60)).collect();
    cat.apply("c", &ops).unwrap();
    assert!(cat.rebuild("c", RebuildPlan::new()).unwrap());
    let shape = cat.column_shape("c").unwrap().unwrap();
    assert_eq!((shape.shards, shape.spec), (8, AlgoSpec::Dc));
    assert!((cat.total_count("c").unwrap() - 1_024.0).abs() < 1e-6);

    assert!(matches!(
        cat.rebuild("c", RebuildPlan::new().with_shards(0)),
        Err(CatalogError::InvalidShardPlan(_))
    ));
    assert!(cat.rebuild("ghost", RebuildPlan::new()).is_err());

    // Unsharded stores have no shape to rebuild: the trait defaults.
    let plain = Catalog::new();
    plain
        .register(
            "c",
            ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(0.5)),
        )
        .unwrap();
    assert!(!plain
        .rebuild("c", RebuildPlan::new().with_shards(4))
        .unwrap());
    assert_eq!(plain.column_shape("c").unwrap(), None);
}

/// The autoscaling acceptance loop on a bare sharded store: a hot
/// burst doubles `k` toward the cap, an idle tail halves it back to
/// the floor — every step an ordinary `RebuildPlan` behind the same
/// barrier, with the mass carried through intact.
#[test]
fn autoscale_policy_scales_up_under_load_and_down_when_idle() {
    let policy = AutoscalePolicy {
        min_shards: 2,
        max_shards: 8,
        scale_up_rate: 1_024,
        scale_down_rate: 32,
        skew_threshold: 4.0,
        min_interval_epochs: 2,
        min_load: 512,
    };
    let cat = ShardedCatalog::new();
    cat.register(
        "c",
        ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0))
            .with_seed(5)
            .with_plan(ShardPlan::new(DOMAIN.0, DOMAIN.1, 2).unwrap())
            .with_autoscale(policy),
    )
    .unwrap();

    let mut total = 0u64;
    let mut peak = 0;
    // Burst: 2048 ops per epoch, far above the scale-up rate.
    for e in 0..12i64 {
        let batch: Vec<UpdateOp> = (0..2_048)
            .map(|i| UpdateOp::Insert((e + i) % 500))
            .collect();
        total += batch.len() as u64;
        cat.apply("c", &batch).unwrap();
        peak = peak.max(cat.column_shape("c").unwrap().unwrap().shards);
    }
    assert_eq!(peak, 8, "burst must scale k to the cap");

    // Idle: 8 ops per epoch, far below the scale-down rate.
    for e in 0..24i64 {
        let batch: Vec<UpdateOp> = (0..8)
            .map(|i| UpdateOp::Insert((e * 31 + i) % 500))
            .collect();
        total += batch.len() as u64;
        cat.apply("c", &batch).unwrap();
    }
    assert_eq!(
        cat.column_shape("c").unwrap().unwrap().shards,
        2,
        "idle tail must scale k back to the floor"
    );
    assert!((cat.total_count("c").unwrap() - total as f64).abs() < 1e-6);
}

/// Rebuilds preserve the routing invariants: after any shape change
/// the live map still tiles the domain and routes exactly.
#[test]
fn rebuilt_maps_keep_routing_invariants() {
    let cat = sharded(AlgoSpec::Dc, 4, 17);
    let ops: Vec<UpdateOp> = (0..3_000).map(|i| UpdateOp::Insert(i * i % 500)).collect();
    cat.apply("c", &ops).unwrap();
    for k in [9, 16, 3] {
        cat.rebuild("c", RebuildPlan::new().with_shards(k)).unwrap();
        let map = cat.shard_map("c").unwrap();
        assert_eq!(map.domain(), DOMAIN);
        assert_eq!(map.shards(), k);
        let mut next = DOMAIN.0;
        for i in 0..k {
            let (a, b) = map.shard_range(i);
            assert_eq!(a, next, "shard {i} must start where {} ended", i as i64 - 1);
            assert!(b >= a - 1, "shard {i} range worse than empty");
            next = b + 1;
            if b >= a {
                assert_eq!(map.route(a), i);
                assert_eq!(map.route(b), i);
            }
        }
        assert_eq!(next, DOMAIN.1 + 1, "ranges must tile the whole domain");
    }
}
