//! Parity suite for the `AlgoSpec` registry: driving the same update
//! stream through the object-safe `Box<dyn DynHistogram>` path and
//! through the concrete generic path must land on identical spans and
//! identical KS error, for every algorithm in the registry.
//!
//! This is the contract that makes the trait split safe: the registry is
//! a packaging layer, never a different algorithm.

use dynamic_histograms::core::dynamic::{DadoHistogram, DcHistogram, DvoHistogram};
use dynamic_histograms::core::{ks_error, BucketSpan, DataDistribution, HistogramClass, UpdateOp};
use dynamic_histograms::optimizer::SpanHistogram;
use dynamic_histograms::prelude::*;
use dynamic_histograms::sample::AcHistogram;
use proptest::prelude::*;

/// The concrete, statically dispatched path the workspace used before the
/// registry existed: named types, generic `Histogram::apply`.
fn concrete_spans(
    spec: AlgoSpec,
    memory: MemoryBudget,
    seed: u64,
    ops: &[UpdateOp],
    truth: &DataDistribution,
) -> Vec<BucketSpan> {
    let n_bc = memory.buckets(HistogramClass::BorderAndCount);
    let n_b2 = memory.buckets(HistogramClass::BorderAndTwoCounters);
    let replay = ops.iter().copied();
    match spec {
        AlgoSpec::Dc => {
            let mut h = DcHistogram::new(n_bc);
            h.apply(replay);
            h.spans()
        }
        AlgoSpec::Dvo => {
            let mut h = DvoHistogram::new(n_b2);
            h.apply(replay);
            h.spans()
        }
        AlgoSpec::Dado => {
            let mut h = DadoHistogram::new(n_b2);
            h.apply(replay);
            h.spans()
        }
        AlgoSpec::Ac { disk_factor } => {
            let mut h = AcHistogram::new(n_bc, memory.sample_elements(disk_factor).max(1), seed);
            h.apply(replay);
            h.spans()
        }
        AlgoSpec::EquiWidth => EquiWidthHistogram::build(truth, n_bc).spans(),
        AlgoSpec::EquiDepth => EquiDepthHistogram::build(truth, n_bc).spans(),
        AlgoSpec::Compressed => CompressedHistogram::build(truth, n_bc).spans(),
        AlgoSpec::VOptimal => VOptimalHistogram::build(truth, n_bc).spans(),
        AlgoSpec::Sado => SadoHistogram::build(truth, n_bc).spans(),
        AlgoSpec::Ssbm => SsbmHistogram::build(truth, n_bc).spans(),
    }
}

/// A mixed insert/delete stream over a narrow domain (provokes spikes,
/// repartitions and bucket borrowing), plus its exact live distribution.
fn stream_strategy() -> impl Strategy<Value = (Vec<UpdateOp>, DataDistribution)> {
    (prop::collection::vec(0i64..150, 1..600), any::<u64>()).prop_map(|(values, seed)| {
        let stream = UpdateStream::build(
            &values,
            WorkloadKind::InsertionsWithRandomDeletions {
                delete_probability: 0.25,
            },
            seed,
        );
        let truth = DataDistribution::from_values(&stream.final_multiset());
        (stream.ops(), truth)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn dyn_path_matches_concrete_path_for_every_spec(
        case in stream_strategy(),
        seed in 0u64..1000,
    ) {
        let (ops, truth) = case;
        let memory = MemoryBudget::from_kb(0.25);
        for spec in AlgoSpec::all() {
            // Object-safe path: registry build, batched replay through the
            // trait object.
            let mut boxed = spec.build(memory, seed);
            boxed.apply_slice(&ops);
            let dyn_spans = boxed.spans();

            // Concrete generic path.
            let spans = concrete_spans(spec, memory, seed, &ops, &truth);

            prop_assert_eq!(
                &dyn_spans, &spans,
                "{}: dyn and concrete spans diverge", spec.label()
            );
            let dyn_ks = ks_error(&boxed, &truth);
            let concrete_ks = ks_error(&SpanHistogram::new(spans), &truth);
            prop_assert!(
                (dyn_ks - concrete_ks).abs() == 0.0,
                "{}: KS diverges: dyn {} vs concrete {}", spec.label(), dyn_ks, concrete_ks
            );
        }
    }

    #[test]
    fn dyn_path_is_deterministic_per_seed(
        case in stream_strategy(),
        seed in 0u64..1000,
    ) {
        let (ops, _truth) = case;
        let memory = MemoryBudget::from_kb(0.25);
        for spec in AlgoSpec::all() {
            let mut a = spec.build(memory, seed);
            let mut b = spec.build(memory, seed);
            a.apply_slice(&ops);
            b.apply_slice(&ops);
            prop_assert_eq!(a.spans(), b.spans(), "{}: nondeterministic", spec.label());
        }
    }
}

/// Batch boundaries must be invisible: one big `apply_slice` and many
/// small ones are the same stream.
#[test]
fn algospec_label_parse_roundtrip_never_drifts() {
    // Deterministic sweep companion to the property test below: every
    // registry default round-trips bit-exactly.
    for spec in AlgoSpec::all() {
        assert_eq!(spec.label().parse::<AlgoSpec>().unwrap(), spec);
        assert_eq!(spec.to_string(), spec.label());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The registry has two legend sources — `Display`/`label` renders,
    /// `FromStr` parses — and CLIs (`repro --algos`) depend on them
    /// agreeing. Property-check the round trip for every variant,
    /// including arbitrary `AC{k}` disk factors, plus the documented
    /// parser liberties (case-insensitivity, optional `X` suffix).
    #[test]
    fn algospec_display_fromstr_roundtrip(variant in 0usize..10, k in 1usize..10_000) {
        let spec = match variant {
            0 => AlgoSpec::Dc,
            1 => AlgoSpec::Dvo,
            2 => AlgoSpec::Dado,
            3 => AlgoSpec::Ac { disk_factor: k },
            4 => AlgoSpec::EquiWidth,
            5 => AlgoSpec::EquiDepth,
            6 => AlgoSpec::Compressed,
            7 => AlgoSpec::VOptimal,
            8 => AlgoSpec::Sado,
            _ => AlgoSpec::Ssbm,
        };
        let label = spec.to_string();
        prop_assert_eq!(label.parse::<AlgoSpec>().unwrap(), spec, "label {}", label);
        // Parsing is case-insensitive both ways.
        prop_assert_eq!(label.to_ascii_lowercase().parse::<AlgoSpec>().unwrap(), spec);
        prop_assert_eq!(label.to_ascii_uppercase().parse::<AlgoSpec>().unwrap(), spec);
        if let AlgoSpec::Ac { disk_factor } = spec {
            // The rendered label carries the factor ("AC20X"), and the
            // suffixless spelling parses to the same spec.
            prop_assert_eq!(label.clone(), format!("AC{disk_factor}X"));
            prop_assert_eq!(format!("AC{disk_factor}").parse::<AlgoSpec>().unwrap(), spec);
        }
    }
}

#[test]
fn batching_is_invisible_to_the_histogram() {
    let values: Vec<i64> = (0..2000).map(|i| (i * 29) % 140).collect();
    let stream = UpdateStream::build(&values, WorkloadKind::RandomInsertions, 5);
    let ops = stream.ops();
    let memory = MemoryBudget::from_kb(0.25);
    for spec in AlgoSpec::all() {
        let mut whole = spec.build(memory, 3);
        whole.apply_slice(&ops);
        let mut chunked = spec.build(memory, 3);
        for chunk in ops.chunks(37) {
            chunked.apply_slice(chunk);
        }
        assert_eq!(
            whole.spans(),
            chunked.spans(),
            "{}: batch boundaries changed the result",
            spec.label()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `GlobalStrategy` mirrors the `AlgoSpec` legend contract: the CLI
    /// (`repro serve --sites --strategy`) parses what `Display` renders,
    /// case-insensitively and with arbitrary interior whitespace, for
    /// both of the paper's Section 8 strategies plus the short codes.
    #[test]
    fn global_strategy_display_fromstr_roundtrip(
        variant in 0usize..2,
        spaces in prop::collection::vec(0usize..4, 3..4),
    ) {
        use dynamic_histograms::distributed::GlobalStrategy;
        let strategy = GlobalStrategy::all()[variant];
        let label = strategy.to_string();
        prop_assert_eq!(label.parse::<GlobalStrategy>().unwrap(), strategy);
        prop_assert_eq!(
            label.to_ascii_uppercase().parse::<GlobalStrategy>().unwrap(),
            strategy
        );
        // Whitespace-injected spellings parse to the same strategy.
        let words: Vec<&str> = label.split(' ').collect();
        let mut padded = String::new();
        for (word, pad) in words.iter().zip(spaces.iter().chain(std::iter::repeat(&1))) {
            padded.push_str(&" ".repeat(*pad));
            padded.push_str(word);
        }
        prop_assert_eq!(padded.parse::<GlobalStrategy>().unwrap(), strategy);
        // The short code round-trips too.
        let code = match strategy {
            GlobalStrategy::HistogramThenUnion => "hu",
            GlobalStrategy::UnionThenHistogram => "uh",
        };
        prop_assert_eq!(code.parse::<GlobalStrategy>().unwrap(), strategy);
    }
}
