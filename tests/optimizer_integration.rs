//! Integration tests: cardinality estimation with real histograms from
//! every family, over the paper's data generator.

use dynamic_histograms::core::{DataDistribution, ReadHistogram};
use dynamic_histograms::optimizer::{
    estimate_equi_join, exact_equi_join, propagate_chain, Predicate, Selectivity, SpanHistogram,
};
use dynamic_histograms::prelude::*;

fn clustered(seed: u64) -> (Vec<i64>, DataDistribution) {
    let cfg = SyntheticConfig::default()
        .with_clusters(100)
        .with_total_points(20_000);
    let data = cfg.generate(seed);
    let truth = DataDistribution::from_values(&data.values);
    (data.shuffled(seed), truth)
}

#[test]
fn dado_selection_estimates_are_accurate() {
    let (values, truth) = clustered(1);
    let mut h = DadoHistogram::new(64);
    for &v in &values {
        h.insert(v);
    }
    // Probe a spread of range predicates; all should be within a few
    // percent of the relation size.
    for lo in (0..4500).step_by(375) {
        let p = Predicate::Between(lo, lo + 500);
        let s = Selectivity::of(p, &h, &truth);
        let abs_err = (s.estimated - s.exact).abs() / truth.total() as f64;
        assert!(
            abs_err < 0.03,
            "{p:?}: est {} vs exact {} (abs err {abs_err})",
            s.estimated,
            s.exact
        );
    }
}

#[test]
fn equi_join_estimates_from_good_histograms_are_close() {
    let (va, ta) = clustered(2);
    let (vb, tb) = clustered(3);
    let mut ha = DadoHistogram::new(64);
    let mut hb = DadoHistogram::new(64);
    for &v in &va {
        ha.insert(v);
    }
    for &v in &vb {
        hb.insert(v);
    }
    let est = estimate_equi_join(&ha, &hb);
    let exact = exact_equi_join(&ta, &tb) as f64;
    assert!(exact > 0.0);
    let ratio = est / exact;
    assert!(
        (0.5..2.0).contains(&ratio),
        "join estimate off by more than 2x: est {est}, exact {exact}"
    );
}

#[test]
fn static_histograms_also_estimate_joins() {
    let (_, ta) = clustered(4);
    let (_, tb) = clustered(5);
    let ha = SsbmHistogram::build(&ta, 64);
    let hb = CompressedHistogram::build(&tb, 64);
    let est = estimate_equi_join(&ha, &hb);
    let exact = exact_equi_join(&ta, &tb) as f64;
    let ratio = est / exact;
    assert!(
        (0.5..2.0).contains(&ratio),
        "static join estimate off: est {est}, exact {exact}"
    );
}

#[test]
fn chain_errors_grow_but_stay_bounded_for_fresh_histograms() {
    let rels: Vec<(Vec<i64>, DataDistribution)> = (10..14).map(clustered).collect();
    let hists: Vec<SpanHistogram> = rels
        .iter()
        .map(|(values, _)| {
            let mut h = DadoHistogram::new(64);
            for &v in values {
                h.insert(v);
            }
            SpanHistogram::new(h.spans())
        })
        .collect();
    let truths: Vec<DataDistribution> = rels.iter().map(|(_, t)| t.clone()).collect();
    let refs: Vec<&dyn ReadHistogram> = hists.iter().map(|h| h as _).collect();
    let report = propagate_chain(&refs, &truths);
    let errs = report.relative_errors();
    assert_eq!(errs.len(), 3);
    // Fresh, well-fitted histograms keep even the 4-way join usable.
    assert!(
        errs.last().unwrap() < &1.0,
        "4-way join error should stay under 100%: {errs:?}"
    );
}

#[test]
fn empty_relation_joins_to_zero() {
    let (_, ta) = clustered(6);
    let ha = SsbmHistogram::build(&ta, 32);
    let empty = SpanHistogram::new(vec![]);
    assert_eq!(estimate_equi_join(&ha, &empty), 0.0);
}

#[test]
fn predicate_estimates_respect_totals() {
    let (values, _) = clustered(7);
    let mut h = DcHistogram::new(64);
    for &v in &values {
        h.insert(v);
    }
    let all = Predicate::Between(i64::MIN / 4, i64::MAX / 4).cardinality(&h);
    assert!((all - 20_000.0).abs() < 1e-6);
    let none = Predicate::Between(100_000, 200_000).cardinality(&h);
    assert_eq!(none, 0.0);
}
