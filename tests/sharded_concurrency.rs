//! Multi-writer concurrency over the sharded serving layer: several
//! writer threads ingest batches into the *same* column while readers
//! estimate off composed snapshots — no panics, monotone checkpoints,
//! exact mass accounting at the end. Exercised for both ingestion
//! designs (per-shard locks and per-shard MPSC workers).
//!
//! Each writer deletes only values it inserted in its *own* earlier
//! batches: per-writer ordering is preserved by both designs (locked
//! applies are synchronous; MPSC is FIFO per sender), so deletions always
//! target live values no matter how writers interleave.

use dynamic_histograms::core::{ReadHistogram, UpdateOp};
use dynamic_histograms::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

const WRITERS: i64 = 4;
const BATCHES: i64 = 30;
const INSERTS_PER_BATCH: i64 = 150;
const DOMAIN: (i64, i64) = (0, 499);

/// Writer `w`'s batch `b`: 150 inserts, plus (from the second batch on)
/// 30 deletes of values the same writer inserted in its previous batch.
fn batch(w: i64, b: i64) -> Vec<UpdateOp> {
    let value = |b: i64, i: i64| (((w * BATCHES + b) * INSERTS_PER_BATCH + i) * 17) % 500;
    let mut ops: Vec<UpdateOp> = (0..INSERTS_PER_BATCH)
        .map(|i| UpdateOp::Insert(value(b, i)))
        .collect();
    if b > 0 {
        ops.extend((0..30).map(|i| UpdateOp::Delete(value(b - 1, i))));
    }
    ops
}

fn expected_total() -> f64 {
    (WRITERS * (BATCHES * INSERTS_PER_BATCH - (BATCHES - 1) * 30)) as f64
}

fn run(plan: ShardPlan) {
    let catalog = ShardedCatalog::new();
    catalog
        .register(
            "x",
            ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0))
                .with_seed(11)
                .with_plan(plan),
        )
        .unwrap();
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Readers: snapshots stay sane and checkpoints never regress.
        for _ in 0..2 {
            let catalog = &catalog;
            let done = &done;
            scope.spawn(move || {
                let mut last_cp = 0u64;
                let mut reads = 0u64;
                while !done.load(Ordering::Acquire) || reads == 0 {
                    let snap = catalog.snapshot("x").unwrap();
                    assert!(
                        snap.checkpoint() >= last_cp,
                        "checkpoint moved backwards: {last_cp} -> {}",
                        snap.checkpoint()
                    );
                    last_cp = snap.checkpoint();
                    let total = snap.total_count();
                    assert!(total.is_finite() && total >= -1e-6, "bad total {total}");
                    let est = snap.estimate_range(DOMAIN.0, DOMAIN.1);
                    assert!(
                        (est - total).abs() <= total * 0.05 + 1.0,
                        "full-domain estimate {est} far from total {total}"
                    );
                    reads += 1;
                }
            });
        }

        // The inner scope joins every writer before the flag flips, so
        // readers observe at least the complete ingestion tail.
        std::thread::scope(|writers| {
            for w in 0..WRITERS {
                let catalog = &catalog;
                writers.spawn(move || {
                    for b in 0..BATCHES {
                        catalog.apply("x", &batch(w, b)).unwrap();
                    }
                });
            }
        });
        done.store(true, Ordering::Release);
    });

    // Everything accepted, applied, and accounted for.
    catalog.flush("x").unwrap();
    assert_eq!(catalog.checkpoint("x").unwrap(), (WRITERS * BATCHES) as u64);
    let snap = catalog.snapshot("x").unwrap();
    assert_eq!(snap.checkpoint(), (WRITERS * BATCHES) as u64);
    assert!(
        (snap.total_count() - expected_total()).abs() < 1e-6,
        "total {} != expected {}",
        snap.total_count(),
        expected_total()
    );
}

#[test]
fn multi_writer_locked_ingestion() {
    run(ShardPlan::new(DOMAIN.0, DOMAIN.1, 8).unwrap());
}

#[test]
fn multi_writer_channel_ingestion() {
    run(ShardPlan::new(DOMAIN.0, DOMAIN.1, 8).unwrap().channel());
}

#[test]
fn more_shards_than_values_still_works() {
    // Degenerate split: more shards than distinct values in the domain.
    let plan = ShardPlan::new(0, 3, 16).unwrap();
    let catalog = ShardedCatalog::new();
    catalog
        .register(
            "tiny",
            ColumnConfig::new(AlgoSpec::Dado, MemoryBudget::from_kb(0.25))
                .with_seed(5)
                .with_plan(plan),
        )
        .unwrap();
    let ops: Vec<UpdateOp> = (0..400).map(|i| UpdateOp::Insert(i % 4)).collect();
    catalog.apply("tiny", &ops).unwrap();
    assert!((catalog.total_count("tiny").unwrap() - 400.0).abs() < 1e-9);
    for v in 0..4 {
        let est = catalog.estimate_eq("tiny", v).unwrap();
        assert!((est - 100.0).abs() < 1e-6, "eq({v}) = {est}");
    }
}
