//! Replica parity suite: whatever the workload does and however the
//! follower's polling is scheduled, the converged follower is
//! **bit**-identical to the leader.
//!
//! The proptest drives an arbitrary `dh_gen` update stream through a
//! durable leader while a follower is polled, paused, or dropped and
//! reopened (a replica restart) between epochs, chosen by a generated
//! schedule. With no checkpoints in play the follower's whole history
//! is pure log replay, so the final `SnapshotSet` must match the
//! leader's span for span in raw bits — across all three ingestion
//! designs.
//!
//! Deterministic companions pin down the edges the random schedule
//! can't guarantee it hits: a mid-stream re-shard that *must* move
//! (skewed workload), whose replay at the exact barrier is proven by
//! the shard-load counters matching the leader's integer for integer;
//! a mid-stream shape change (shard-count growth plus an online
//! algorithm migration) replayed the same way; and a leader
//! crash-and-reopen mid-stream that the follower tails straight
//! through.

use dynamic_histograms::prelude::*;
use dynamic_histograms::replica::Follower;
use proptest::prelude::*;

const DOMAIN: (i64, i64) = (0, 999);

#[derive(Debug, Clone, Copy)]
enum Design {
    SingleLock,
    ShardedLock,
    ShardedChannel,
}

impl Design {
    fn all() -> [Design; 3] {
        [
            Design::SingleLock,
            Design::ShardedLock,
            Design::ShardedChannel,
        ]
    }

    fn kind(self) -> StoreKind {
        match self {
            Design::SingleLock => StoreKind::Single,
            Design::ShardedLock | Design::ShardedChannel => StoreKind::Sharded,
        }
    }

    fn config(self) -> ColumnConfig {
        let config = ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(0.5)).with_seed(3);
        let plan = ShardPlan::new(DOMAIN.0, DOMAIN.1, 4).unwrap();
        match self {
            Design::SingleLock => config,
            Design::ShardedLock => config.with_plan(plan),
            Design::ShardedChannel => config.with_plan(plan.channel()),
        }
    }
}

fn opts() -> DurableOptions {
    DurableOptions {
        sync: SyncPolicy::Off,
        checkpoint_every: None,
        retain_generations: 2,
    }
}

fn span_bits(snap: &Snapshot) -> Vec<(u64, u64, u64)> {
    snap.spans()
        .iter()
        .map(|s| (s.lo.to_bits(), s.hi.to_bits(), s.count.to_bits()))
        .collect()
}

/// What the schedule does to the follower between two leader epochs.
#[derive(Debug, Clone, Copy)]
enum Step {
    Poll,
    Pause,
    Restart,
}

impl Step {
    /// Decodes one generated schedule byte.
    fn decode(byte: u8) -> Step {
        match byte % 3 {
            0 => Step::Poll,
            1 => Step::Pause,
            _ => Step::Restart,
        }
    }
}

/// Replays `batches` through a leader of `design` while driving the
/// follower by `schedule`, then converges and demands bit-identity.
fn run_parity(design: Design, batches: &[Vec<UpdateOp>], schedule: &[Step]) {
    let dir = TempDir::new("replica-parity");
    let leader = DurableStore::open(dir.path(), design.kind(), opts()).unwrap();
    leader.register("c", design.config()).unwrap();
    let mut follower = Follower::open(dir.path(), design.kind()).unwrap();

    for (i, batch) in batches.iter().enumerate() {
        leader.apply("c", batch).unwrap();
        if i == batches.len() / 2 && !matches!(design, Design::SingleLock) {
            // Mid-stream border move; arbitrary workloads may or may
            // not be skewed enough for it to fire — parity must hold
            // either way (the deterministic test below forces it).
            let _ = leader.reshard("c").unwrap();
        }
        match schedule[i % schedule.len()] {
            Step::Poll => {
                follower.poll().unwrap();
            }
            Step::Pause => {}
            Step::Restart => {
                // A replica restart: all tailing state is gone; the
                // fresh follower replays the whole log from scratch.
                follower = Follower::open(dir.path(), design.kind()).unwrap();
            }
        }
    }

    for _ in 0..16 {
        follower.poll().unwrap();
        if follower.epoch() == leader.epoch() {
            break;
        }
    }
    assert_eq!(follower.epoch(), leader.epoch());
    let ours = follower.snapshot_set(&["c"]).unwrap();
    let theirs = leader.snapshot_set(&["c"]).unwrap();
    assert_eq!(ours.epoch(), theirs.epoch());
    assert_eq!(
        span_bits(ours.get("c").unwrap()),
        span_bits(theirs.get("c").unwrap()),
        "{design:?}: follower state not bit-identical to the leader"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_workload_any_polling_schedule_converges_bit_identically(
        values in prop::collection::vec(DOMAIN.0..DOMAIN.1 + 1, 50..400),
        seed in any::<u64>(),
        batch in 1usize..40,
        schedule_bytes in prop::collection::vec(0u8..3, 4..24),
    ) {
        let stream = UpdateStream::build(&values, WorkloadKind::RandomInsertions, seed);
        let batches: Vec<Vec<UpdateOp>> = stream
            .ops()
            .chunks(batch)
            .map(<[UpdateOp]>::to_vec)
            .collect();
        let schedule: Vec<Step> = schedule_bytes.iter().copied().map(Step::decode).collect();
        for design in Design::all() {
            run_parity(design, &batches, &schedule);
        }
    }
}

/// The forced mid-stream re-shard: a skewed stream guarantees the
/// border move fires, and the follower must replay it at its **exact**
/// barrier — proven two ways: the final spans are bit-identical, and
/// the shard-load counters (which the leader resets at the barrier and
/// then accumulates under the new borders) match integer for integer.
/// A replay one epoch early or late would route some batch under the
/// wrong borders and break the counters even if the histogram healed.
#[test]
fn mid_stream_reshard_replays_at_its_exact_barrier() {
    for design in [Design::ShardedLock, Design::ShardedChannel] {
        let dir = TempDir::new("replica-reshard");
        let leader = DurableStore::open(dir.path(), design.kind(), opts()).unwrap();
        leader.register("c", design.config()).unwrap();
        let follower = Follower::open(dir.path(), design.kind()).unwrap();

        // Heavily skewed: everything lands in the first equal-width
        // shard, so the re-shard must move borders.
        for e in 0..12i64 {
            let batch: Vec<UpdateOp> = (0..32)
                .map(|j| UpdateOp::Insert((e * 7 + j) % 120))
                .collect();
            leader.apply("c", &batch).unwrap();
            if e == 6 {
                assert!(
                    leader.reshard("c").unwrap(),
                    "{design:?}: borders must move"
                );
            }
            follower.poll().unwrap();
        }
        follower.poll().unwrap();
        assert_eq!(follower.epoch(), leader.epoch());
        assert_eq!(
            follower.shard_load("c").unwrap(),
            leader.shard_load("c").unwrap(),
            "{design:?}: shard counters prove the barrier was missed"
        );
        assert_eq!(
            span_bits(&follower.snapshot("c").unwrap()),
            span_bits(&leader.snapshot("c").unwrap()),
            "{design:?}: post-re-shard state not bit-identical"
        );
    }
}

/// Mid-stream **shape** changes: the leader grows the shard count and
/// then migrates the algorithm online; the follower replays each
/// `Rebuild` record at its exact barrier. Proven the same two ways as
/// the re-shard test — bit-identical spans, and shard-load counters
/// matching integer for integer (a replay one epoch off would route a
/// batch under the wrong borders) — plus the follower's live shape
/// matching the leader's, and a restarted follower replaying the whole
/// shape history from scratch to the same state.
#[test]
fn mid_stream_rebuild_replays_at_its_exact_barrier() {
    for design in [Design::ShardedLock, Design::ShardedChannel] {
        let dir = TempDir::new("replica-rebuild");
        let leader = DurableStore::open(dir.path(), design.kind(), opts()).unwrap();
        leader.register("c", design.config()).unwrap();
        let follower = Follower::open(dir.path(), design.kind()).unwrap();

        for e in 0..12i64 {
            let batch: Vec<UpdateOp> = (0..32)
                .map(|j| UpdateOp::Insert((e * 7 + j) % 120))
                .collect();
            leader.apply("c", &batch).unwrap();
            if e == 4 {
                assert!(leader
                    .rebuild("c", RebuildPlan::new().with_shards(8))
                    .unwrap());
            }
            if e == 8 {
                assert!(leader
                    .rebuild("c", RebuildPlan::new().with_spec(AlgoSpec::Dado))
                    .unwrap());
            }
            follower.poll().unwrap();
        }
        follower.poll().unwrap();
        assert_eq!(follower.epoch(), leader.epoch());
        assert_eq!(
            follower.shard_load("c").unwrap(),
            leader.shard_load("c").unwrap(),
            "{design:?}: shard counters prove a rebuild barrier was missed"
        );
        assert_eq!(
            span_bits(&follower.snapshot("c").unwrap()),
            span_bits(&leader.snapshot("c").unwrap()),
            "{design:?}: post-rebuild state not bit-identical"
        );
        let shape = follower.column_shape("c").unwrap().unwrap();
        assert_eq!(shape.shards, 8);
        assert_eq!(shape.spec, AlgoSpec::Dado);
        assert_eq!(shape, leader.column_shape("c").unwrap().unwrap());

        // A fresh follower replays the whole shape history from scratch.
        let restarted = Follower::open(dir.path(), design.kind()).unwrap();
        restarted.poll().unwrap();
        assert_eq!(restarted.epoch(), leader.epoch());
        assert_eq!(
            span_bits(&restarted.snapshot("c").unwrap()),
            span_bits(&leader.snapshot("c").unwrap()),
            "{design:?}: restarted follower diverged across rebuilds"
        );
    }
}

/// Back-to-back shape changes at the **same barrier**: rebuilds publish
/// no epoch, so a re-shard followed by two rebuilds with no commit in
/// between all log the same barrier — only their ordinals
/// (`WalRecord::Rebuild::seq`) tell them apart. A follower that deduped
/// on the barrier would skip everything after the first record and
/// silently diverge (while the leader's own recovery replays all
/// three); the ordinal-based dedup must apply each exactly once.
#[test]
fn same_barrier_rebuild_stack_replays_every_record() {
    for design in [Design::ShardedLock, Design::ShardedChannel] {
        let dir = TempDir::new("replica-same-barrier");
        let leader = DurableStore::open(dir.path(), design.kind(), opts()).unwrap();
        leader.register("c", design.config()).unwrap();
        let follower = Follower::open(dir.path(), design.kind()).unwrap();

        // Skewed mass so the border move is guaranteed to be a move.
        for e in 0..6i64 {
            let batch: Vec<UpdateOp> = (0..32)
                .map(|j| UpdateOp::Insert((e * 7 + j) % 120))
                .collect();
            leader.apply("c", &batch).unwrap();
            follower.poll().unwrap();
        }
        // Three shape changes, no commit between them: one barrier.
        assert!(
            leader.reshard("c").unwrap(),
            "{design:?}: borders must move"
        );
        assert!(leader
            .rebuild("c", RebuildPlan::new().with_shards(8))
            .unwrap());
        assert!(leader
            .rebuild("c", RebuildPlan::new().with_spec(AlgoSpec::Dado))
            .unwrap());
        for e in 6..10i64 {
            let batch: Vec<UpdateOp> = (0..32)
                .map(|j| UpdateOp::Insert((e * 7 + j) % 120))
                .collect();
            leader.apply("c", &batch).unwrap();
            follower.poll().unwrap();
        }
        follower.poll().unwrap();

        assert_eq!(follower.epoch(), leader.epoch());
        let shape = follower.column_shape("c").unwrap().unwrap();
        assert_eq!(shape.shards, 8, "{design:?}: second rebuild was skipped");
        assert_eq!(
            shape.spec,
            AlgoSpec::Dado,
            "{design:?}: third rebuild was skipped"
        );
        assert_eq!(
            follower.shard_load("c").unwrap(),
            leader.shard_load("c").unwrap(),
            "{design:?}: shard counters prove a same-barrier record was missed"
        );
        assert_eq!(
            span_bits(&follower.snapshot("c").unwrap()),
            span_bits(&leader.snapshot("c").unwrap()),
            "{design:?}: same-barrier rebuild stack not bit-identical"
        );

        // A fresh follower replays the stack from scratch to the same
        // state — and so does the leader's own recovery.
        let restarted = Follower::open(dir.path(), design.kind()).unwrap();
        restarted.poll().unwrap();
        assert_eq!(
            span_bits(&restarted.snapshot("c").unwrap()),
            span_bits(&leader.snapshot("c").unwrap()),
            "{design:?}: restarted follower diverged across the stack"
        );
    }
}

/// Rebuild ordinals survive checkpoint pruning: after the cadence
/// discards the segments holding a column's rebuild records, a
/// restarted leader must keep numbering where it left off (the
/// checkpoint carries the ordinal floor) — if it reissued ordinals a
/// follower restored from that same checkpoint had already applied,
/// the follower would skip every later shape change as a re-read.
#[test]
fn rebuild_ordinals_survive_checkpoint_pruning_and_leader_restart() {
    let dir = TempDir::new("replica-seq-ckpt");
    let opts = DurableOptions {
        sync: SyncPolicy::Off,
        checkpoint_every: Some(8),
        retain_generations: 2,
    };
    let design = Design::ShardedLock;
    {
        let leader = DurableStore::open(dir.path(), design.kind(), opts).unwrap();
        leader.register("c", design.config()).unwrap();
        for e in 0..6i64 {
            let batch: Vec<UpdateOp> = (0..32)
                .map(|j| UpdateOp::Insert((e * 7 + j) % 120))
                .collect();
            leader.apply("c", &batch).unwrap();
        }
        // Three ordinals issued, then checkpointed away: the records
        // are pruned, the checkpoint floor is all that remains.
        assert!(leader.reshard("c").unwrap());
        assert!(leader
            .rebuild("c", RebuildPlan::new().with_shards(8))
            .unwrap());
        assert!(leader
            .rebuild("c", RebuildPlan::new().with_spec(AlgoSpec::Dado))
            .unwrap());
        leader.checkpoint_now().unwrap();
    }

    let leader = DurableStore::open(dir.path(), design.kind(), opts).unwrap();
    let follower = Follower::open(dir.path(), design.kind()).unwrap();
    follower.poll().unwrap();
    assert_eq!(follower.epoch(), leader.epoch());

    // A shape change issued *after* the restart must reach the
    // follower: its ordinal has to land above the checkpoint floor.
    leader.apply("c", &[UpdateOp::Insert(3)]).unwrap();
    assert!(leader
        .rebuild("c", RebuildPlan::new().with_shards(4))
        .unwrap());
    leader.apply("c", &[UpdateOp::Insert(9)]).unwrap();
    follower.poll().unwrap();
    follower.poll().unwrap();

    assert_eq!(follower.epoch(), leader.epoch());
    assert_eq!(
        follower.column_shape("c").unwrap().unwrap().shards,
        4,
        "post-restart rebuild was skipped as a reissued ordinal"
    );
    assert_eq!(
        span_bits(&follower.snapshot("c").unwrap()),
        span_bits(&leader.snapshot("c").unwrap()),
        "follower diverged across the pruned rebuild history"
    );
}

/// A leader crash-and-reopen mid-stream: recovery replays the leader's
/// own log (deterministically, to the identical state) and resumes
/// appending to the same changelog; a follower that was tailing it
/// keeps polling straight through and still converges bit-identically.
#[test]
fn leader_restart_mid_stream_keeps_the_follower_tailing() {
    for design in Design::all() {
        let dir = TempDir::new("replica-leader-restart");
        let leader = DurableStore::open(dir.path(), design.kind(), opts()).unwrap();
        leader.register("c", design.config()).unwrap();
        let follower = Follower::open(dir.path(), design.kind()).unwrap();

        for e in 0..6i64 {
            leader
                .apply("c", &[UpdateOp::Insert(e * 41 % 1000), UpdateOp::Insert(e)])
                .unwrap();
            follower.poll().unwrap();
        }
        assert_eq!(follower.epoch(), 6);

        // Crash: drop the leader (sync on drop), recover it from its
        // own changelog, keep publishing.
        drop(leader);
        let leader = DurableStore::open(dir.path(), design.kind(), opts()).unwrap();
        assert_eq!(leader.epoch(), 6);
        for e in 6..12i64 {
            leader
                .apply("c", &[UpdateOp::Insert(e * 41 % 1000), UpdateOp::Insert(e)])
                .unwrap();
            follower.poll().unwrap();
        }

        follower.poll().unwrap();
        assert_eq!(follower.epoch(), leader.epoch());
        assert_eq!(
            span_bits(&follower.snapshot("c").unwrap()),
            span_bits(&leader.snapshot("c").unwrap()),
            "{design:?}: follower diverged across a leader restart"
        );
    }
}
