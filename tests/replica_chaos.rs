//! Chaos replication suite: a `Follower` raced against `ChaosDir`, the
//! fault-injecting segment copier.
//!
//! A leader publishes a fixed-shape workload (every epoch inserts
//! exactly `OPS` values) while a chaos copier replicates its changelog
//! directory with injected faults — tails truncated at arbitrary byte
//! boundaries, files delayed and reordered, checkpoints deleted
//! mid-copy, leader prunes mirrored under the reader's feet. The
//! contract under test, after every fault:
//!
//! * the follower only ever exposes **whole-epoch** states — its served
//!   mass is exactly `OPS * epoch` at every observation point, and its
//!   epoch never moves backwards;
//! * faults are never errors — `poll` reports `Stalled`/`Restored` and
//!   keeps serving;
//! * once the faults stop (`ChaosDir::settle`), the follower converges
//!   to the leader's exact epoch; with a pure-log history (no
//!   checkpoint restore in the follower's past) the converged state is
//!   **bit**-identical, span for span.
//!
//! Every design ships the mid-stream re-shard too: the sharded leaders
//! move their borders halfway through, and the follower must replay the
//! move at its exact barrier for the bit-identity assertions to hold.

use dynamic_histograms::prelude::*;
use dynamic_histograms::replica::chaos::ChaosDir;

const OPS: u64 = 8;
const EPOCHS: u64 = 24;
const DOMAIN: (i64, i64) = (0, 999);

/// The three ingestion designs, as a durable leader configures them.
#[derive(Debug, Clone, Copy)]
enum Design {
    SingleLock,
    ShardedLock,
    ShardedChannel,
}

impl Design {
    fn all() -> [Design; 3] {
        [
            Design::SingleLock,
            Design::ShardedLock,
            Design::ShardedChannel,
        ]
    }

    fn kind(self) -> StoreKind {
        match self {
            Design::SingleLock => StoreKind::Single,
            Design::ShardedLock | Design::ShardedChannel => StoreKind::Sharded,
        }
    }

    fn config(self) -> ColumnConfig {
        let config = ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(0.5)).with_seed(3);
        let plan = ShardPlan::new(DOMAIN.0, DOMAIN.1, 4).unwrap();
        match self {
            Design::SingleLock => config,
            Design::ShardedLock => config.with_plan(plan),
            Design::ShardedChannel => config.with_plan(plan.channel()),
        }
    }
}

/// Epoch `e`'s batch: exactly `OPS` inserts, skewed low so a mid-stream
/// re-shard has borders worth moving.
fn epoch_ops(e: u64) -> Vec<UpdateOp> {
    (0..OPS)
        .map(|j| {
            let v = if (e + j) % 4 == 0 {
                (e * 37 + j * 113) % 1000
            } else {
                (e * 13 + j * 7) % 120
            };
            UpdateOp::Insert(v as i64)
        })
        .collect()
}

/// A snapshot's rendered spans as raw bits, the currency of the
/// bit-identity assertions.
fn span_bits(snap: &Snapshot) -> Vec<(u64, u64, u64)> {
    snap.spans()
        .iter()
        .map(|s| (s.lo.to_bits(), s.hi.to_bits(), s.count.to_bits()))
        .collect()
}

/// One full chaos replay. `checkpoint_every: None` keeps the follower's
/// history pure log replay (strict bit-identity at the end); a cadence
/// arms leader-side pruning, so the follower may have to restore from a
/// checkpoint mid-storm (mass-exact, epoch-exact convergence, and still
/// bit-identical whenever no restore actually fired).
fn run_chaos(design: Design, chaos_seed: u64, checkpoint_every: Option<u64>) {
    let leader_dir = TempDir::new("chaos-leader");
    let follower_dir = TempDir::new("chaos-follower");
    let leader = DurableStore::open(
        leader_dir.path(),
        design.kind(),
        DurableOptions {
            sync: SyncPolicy::Off,
            checkpoint_every,
            retain_generations: 2,
        },
    )
    .unwrap();
    leader.register("c", design.config()).unwrap();

    let mut chaos = ChaosDir::new(leader_dir.path(), follower_dir.path(), chaos_seed).unwrap();
    let follower =
        dynamic_histograms::replica::Follower::open(chaos.follower_dir(), design.kind()).unwrap();

    let mut saw_restore = false;
    let mut last_epoch = 0u64;
    for e in 1..=EPOCHS {
        leader.apply("c", &epoch_ops(e)).unwrap();
        if e == EPOCHS / 2 && !matches!(design, Design::SingleLock) {
            // Mid-stream border move; the skewed batches guarantee the
            // equal-width plan is imbalanced enough to actually move.
            assert!(leader.reshard("c").unwrap(), "re-shard should move");
        }
        chaos.step().unwrap();
        let report = follower.poll().unwrap();
        saw_restore |= report.status == PollStatus::Restored;

        // Whole-epoch invariant at every observation point: the served
        // mass is exactly OPS per applied epoch, and epochs only grow.
        let at = follower.epoch();
        assert!(at >= last_epoch, "follower epoch moved backwards");
        last_epoch = at;
        if follower.contains("c") {
            // A torn epoch would be off by at least one whole insert
            // (1.0); the bucket arithmetic's float drift is ~1e-13.
            let total = follower.total_count("c").unwrap();
            assert!(
                (total - (OPS * at) as f64).abs() < 1e-6,
                "{design:?}/seed {chaos_seed}: partial epoch exposed at {at} (mass {total})"
            );
        }
        assert!(
            follower.leader_epoch_hint() <= leader.epoch(),
            "hint overshot the leader"
        );
    }

    // The storm ends: a faithful final copy, then the follower must
    // converge to the leader's exact epoch within a bounded number of
    // polls (gap rewinds cost extra polls, never divergence).
    chaos.settle().unwrap();
    let mut caught_up = false;
    for _ in 0..64 {
        follower.poll().unwrap();
        if follower.epoch() == leader.epoch() {
            caught_up = true;
            break;
        }
    }
    assert!(
        caught_up,
        "{design:?}/seed {chaos_seed}: follower never converged \
         (follower {} vs leader {})",
        follower.epoch(),
        leader.epoch()
    );
    assert_eq!(follower.lag_epochs(), 0);
    let leader_total = leader.total_count("c").unwrap();
    let follower_total = follower.total_count("c").unwrap();
    if saw_restore {
        // A checkpoint restore rebuilds integer masses by largest
        // remainder, shedding the leader's accumulated float drift —
        // equal mass, not necessarily equal bits.
        assert!(
            (leader_total - follower_total).abs() < 1e-6,
            "{design:?}/seed {chaos_seed}: mass diverged after convergence"
        );
    } else {
        assert_eq!(
            follower_total.to_bits(),
            leader_total.to_bits(),
            "{design:?}/seed {chaos_seed}: mass diverged after convergence"
        );
    }
    if checkpoint_every.is_none() {
        assert!(!saw_restore, "nothing to restore from without checkpoints");
    }
    if !saw_restore {
        // Pure log replay end to end: the converged state must be
        // bit-identical, span for span.
        assert_eq!(
            span_bits(&follower.snapshot("c").unwrap()),
            span_bits(&leader.snapshot("c").unwrap()),
            "{design:?}/seed {chaos_seed}: converged state not bit-identical"
        );
    }
}

#[test]
fn faulted_stream_exposes_whole_epochs_and_converges_bit_identically() {
    for design in Design::all() {
        for chaos_seed in [1, 7, 42, 1234] {
            run_chaos(design, chaos_seed, None);
        }
    }
}

#[test]
fn checkpoint_pruning_under_chaos_still_converges() {
    for design in Design::all() {
        for chaos_seed in [3, 19, 77] {
            run_chaos(design, chaos_seed, Some(4));
        }
    }
}
