//! Integration tests for the paper's headline dynamic-histogram claims.

use dynamic_histograms::core::{
    ks_error, DataDistribution, Histogram, HistogramClass, MemoryBudget,
};
use dynamic_histograms::prelude::*;

const MEMORY_KB: f64 = 1.0;
const POINTS: u64 = 30_000;

fn reference_data(seed: u64) -> (Vec<i64>, DataDistribution) {
    let cfg = SyntheticConfig::default().with_total_points(POINTS);
    let data = cfg.generate(seed);
    let truth = DataDistribution::from_values(&data.values);
    (data.shuffled(seed ^ 0xABCD), truth)
}

fn run_dynamic<H: Histogram>(mut h: H, values: &[i64]) -> H {
    for &v in values {
        h.insert(v);
    }
    h
}

#[test]
fn dado_beats_dvo_on_average() {
    // Section 4.1: absolute deviations are more robust to arrival-order
    // outliers than squared deviations.
    let memory = MemoryBudget::from_kb(MEMORY_KB);
    let n = memory.buckets(HistogramClass::BorderAndTwoCounters);
    let mut dado_total = 0.0;
    let mut dvo_total = 0.0;
    for seed in 0..5 {
        let (values, truth) = reference_data(seed);
        dado_total += ks_error(&run_dynamic(DadoHistogram::new(n), &values), &truth);
        dvo_total += ks_error(&run_dynamic(DvoHistogram::new(n), &values), &truth);
    }
    assert!(
        dado_total < dvo_total,
        "DADO ({dado_total}) should beat DVO ({dvo_total}) averaged over seeds"
    );
}

#[test]
fn dado_beats_ac_despite_acs_disk_space() {
    let memory = MemoryBudget::from_kb(MEMORY_KB);
    let n2 = memory.buckets(HistogramClass::BorderAndTwoCounters);
    let n1 = memory.buckets(HistogramClass::BorderAndCount);
    let mut dado_total = 0.0;
    let mut ac_total = 0.0;
    for seed in 0..5 {
        let (values, truth) = reference_data(seed);
        dado_total += ks_error(&run_dynamic(DadoHistogram::new(n2), &values), &truth);
        let ac = run_dynamic(
            AcHistogram::new(n1, memory.sample_elements(20), seed),
            &values,
        );
        ac_total += ks_error(&ac, &truth);
    }
    assert!(
        dado_total < ac_total,
        "DADO ({dado_total}) should beat AC with 20x disk ({ac_total})"
    );
}

#[test]
fn dado_comes_close_to_static_quality() {
    // "The DADO histogram ... came very close to the best static
    // histograms" — allow a modest factor at equal memory.
    let memory = MemoryBudget::from_kb(0.25);
    let n2 = memory.buckets(HistogramClass::BorderAndTwoCounters);
    let n1 = memory.buckets(HistogramClass::BorderAndCount);
    let mut dynamic_total = 0.0;
    let mut static_total = 0.0;
    for seed in 0..5 {
        let (values, truth) = reference_data(seed);
        dynamic_total += ks_error(&run_dynamic(DadoHistogram::new(n2), &values), &truth);
        static_total += ks_error(&CompressedHistogram::build(&truth, n1), &truth);
    }
    assert!(
        dynamic_total < 3.0 * static_total,
        "DADO ({dynamic_total}) should be in the same league as SC ({static_total})"
    );
}

#[test]
fn dynamic_histograms_absorb_deletions() {
    // Section 7.3: random deletions do not significantly hurt DADO or DC.
    let memory = MemoryBudget::from_kb(MEMORY_KB);
    let n2 = memory.buckets(HistogramClass::BorderAndTwoCounters);
    let (values, _) = reference_data(11);

    let mut h = DadoHistogram::new(n2);
    let mut truth = DataDistribution::new();
    for &v in &values {
        h.insert(v);
        truth.insert(v);
    }
    let ks_before = ks_error(&h, &truth);

    // Randomly delete half the data (deterministic pseudo-random pick).
    let mut deleted = 0;
    for (i, &v) in values.iter().enumerate() {
        if i % 2 == 0 {
            h.delete(v);
            truth.delete(v);
            deleted += 1;
        }
    }
    assert_eq!(deleted, values.len() / 2);
    let ks_after = ks_error(&h, &truth);
    assert!(
        ks_after < ks_before * 3.0 + 0.01,
        "deletions degraded DADO too much: {ks_before} -> {ks_after}"
    );
    assert_eq!(h.total_count(), truth.total() as f64);
}

#[test]
fn ac_degrades_under_heavy_deletions_while_dado_does_not() {
    // The Fig. 17 effect, as a regression test.
    let memory = MemoryBudget::from_kb(MEMORY_KB);
    let n2 = memory.buckets(HistogramClass::BorderAndTwoCounters);
    let n1 = memory.buckets(HistogramClass::BorderAndCount);
    let (values, _) = reference_data(13);

    let mut dado = DadoHistogram::new(n2);
    let mut ac = AcHistogram::new(n1, memory.sample_elements(20), 13);
    let mut truth = DataDistribution::new();
    for &v in &values {
        dado.insert(v);
        ac.insert(v);
        truth.insert(v);
    }
    // Delete 85% of the data.
    let cutoff = values.len() * 85 / 100;
    for &v in &values[..cutoff] {
        dado.delete(v);
        ac.delete(v);
        truth.delete(v);
    }
    let ks_dado = ks_error(&dado, &truth);
    let ks_ac = ks_error(&ac, &truth);
    assert!(
        ks_dado < 0.06,
        "DADO should stay accurate under deletions: {ks_dado}"
    );
    // AC's backing sample shrank; it should now be clearly behind DADO.
    assert!(
        ks_ac > ks_dado,
        "AC ({ks_ac}) should trail DADO ({ks_dado}) after heavy deletions"
    );
}

#[test]
fn sorted_insertions_are_harder_but_survivable() {
    // Section 7.2: sorted input worsens DADO but it remains comparable to
    // AC. Verify DADO's error stays bounded under sorted arrival.
    let memory = MemoryBudget::from_kb(MEMORY_KB);
    let n2 = memory.buckets(HistogramClass::BorderAndTwoCounters);
    let (mut values, truth) = reference_data(17);
    values.sort_unstable();
    let h = run_dynamic(DadoHistogram::new(n2), &values);
    let ks = ks_error(&h, &truth);
    assert!(ks < 0.1, "sorted insertions blew up DADO: {ks}");
}
