//! Workspace-level smoke test: the `src/lib.rs` quickstart must work as a
//! plain `#[test]`, not only as a doctest, so a doctest-runner regression can
//! never mask a broken prelude.

use dynamic_histograms::prelude::*;

#[test]
fn prelude_quickstart_estimates_within_fifteen_percent() {
    // Maintain a 32-bucket DADO histogram over a stream of integers.
    let mut h = DadoHistogram::new(32);
    for v in 0..10_000i64 {
        h.insert((v * v) % 997);
    }

    // Estimate the selectivity of `X < 250` and compare with ground truth.
    let est = h.estimate_less_than(250.0);
    let truth = (0..10_000i64).filter(|v| (v * v) % 997 < 250).count() as f64;
    assert!(
        (est - truth).abs() / truth < 0.15,
        "DADO estimate {est} deviates more than 15% from ground truth {truth}"
    );
}

#[test]
fn prelude_exports_cover_every_paper_family() {
    // One construction per re-exported family proves the facade wiring.
    let values: Vec<i64> = (0..500).map(|v| (v * 13) % 97).collect();
    let truth = DataDistribution::from_values(&values);

    let _ = EquiWidthHistogram::build(&truth, 8);
    let _ = EquiDepthHistogram::build(&truth, 8);
    let _ = CompressedHistogram::build(&truth, 8);
    let _ = VOptimalHistogram::build(&truth, 8);
    let _ = SadoHistogram::build(&truth, 8);
    let _ = SsbmHistogram::build(&truth, 8);

    let mut dc = DcHistogram::new(8);
    let mut dvo = DvoHistogram::new(8);
    let mut ac = AcHistogram::new(8, 64, 7);
    for &v in &values {
        dc.insert(v);
        dvo.insert(v);
        ac.insert(v);
    }
    assert!(dc.total_count() > 0.0);
    assert!(dvo.total_count() > 0.0);
    assert!(ac.total_count() > 0.0);
}
