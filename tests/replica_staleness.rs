//! Staleness contract of the replica read path.
//!
//! A follower's staleness is *reported*, not guessed: `lag_epochs()` is
//! the gap between `leader_epoch_hint()` — the newest epoch the
//! changelog has proven to exist — and the epoch the follower currently
//! serves. The tests here pin the contract against a `Batched(n)`
//! leader, the configuration where the leader's appends outrun its
//! fsyncs and a naive replica could either under-report (serve stale
//! data claiming freshness) or overshoot (claim epochs the leader never
//! published):
//!
//! * polling after every commit keeps the reported lag at zero — in a
//!   shared changelog directory the unsynced window is page-cache
//!   visible, so `Batched(n)` adds no staleness over `PerCommit`;
//! * a withheld follower is stale by exactly the commits it skipped,
//!   and one poll collapses the whole window (`applied == k`, lag 0);
//! * the hint never overshoots the leader's true epoch, under commits,
//!   forced checkpoints and segment rotation alike;
//! * rotation and checkpoint pruning add no staleness to a live tailer.

use dynamic_histograms::prelude::*;

const DOMAIN: (i64, i64) = (0, 999);

fn config(kind: StoreKind) -> ColumnConfig {
    let config = ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(0.5)).with_seed(3);
    match kind {
        StoreKind::Single => config,
        StoreKind::Sharded => config.with_plan(ShardPlan::new(DOMAIN.0, DOMAIN.1, 4).unwrap()),
    }
}

fn batched(n: u64) -> DurableOptions {
    DurableOptions {
        sync: SyncPolicy::Batched(n),
        checkpoint_every: None,
        retain_generations: 2,
    }
}

fn batch(e: i64) -> Vec<UpdateOp> {
    (0..8)
        .map(|j| UpdateOp::Insert((e * 13 + j * 7) % 1000))
        .collect()
}

/// Opens a `(leader, follower)` pair over one shared changelog dir.
fn pair(dir: &TempDir, kind: StoreKind, opts: DurableOptions) -> (DurableStore, Follower) {
    let leader = DurableStore::open(dir.path(), kind, opts).unwrap();
    leader.register("c", config(kind)).unwrap();
    let follower = Follower::open(dir.path(), kind).unwrap();
    (leader, follower)
}

#[test]
fn polling_after_every_commit_reports_zero_lag_despite_batched_sync() {
    for kind in [StoreKind::Single, StoreKind::Sharded] {
        let dir = TempDir::new("staleness-zero");
        // Batched(64) never fsyncs during this test; the follower must
        // still see every commit through the shared directory.
        let (leader, follower) = pair(&dir, kind, batched(64));
        for e in 1..=16i64 {
            leader.apply("c", &batch(e)).unwrap();
            let report = follower.poll().unwrap();
            assert_eq!(report.applied, 1);
            assert_eq!(follower.epoch(), leader.epoch());
            assert_eq!(follower.lag_epochs(), 0, "{kind:?}: lag after a poll");
        }
    }
}

#[test]
fn a_withheld_follower_is_stale_by_exactly_the_skipped_commits() {
    let dir = TempDir::new("staleness-window");
    let (leader, follower) = pair(&dir, StoreKind::Single, batched(4));

    // Warm up to a known point.
    leader.apply("c", &batch(1)).unwrap();
    follower.poll().unwrap();
    assert_eq!(follower.epoch(), 1);

    // The leader runs ahead by k commits while the follower sits idle.
    // The follower's *served* epoch is frozen; its reported lag can't
    // exceed what its last observation proved, and its true staleness
    // is exactly k.
    const K: u64 = 9;
    for e in 2..=(1 + K as i64) {
        leader.apply("c", &batch(e)).unwrap();
    }
    assert_eq!(follower.epoch(), 1);
    assert_eq!(leader.epoch() - follower.epoch(), K);
    assert!(follower.leader_epoch_hint() <= leader.epoch());

    // One poll drains the whole window: every skipped commit applies,
    // and the reported lag collapses to zero.
    let report = follower.poll().unwrap();
    assert_eq!(report.applied, K);
    assert_eq!(report.status, PollStatus::CaughtUp);
    assert_eq!(follower.epoch(), leader.epoch());
    assert_eq!(follower.lag_epochs(), 0);
}

#[test]
fn the_hint_never_overshoots_the_leader() {
    let dir = TempDir::new("staleness-hint");
    let (leader, follower) = pair(&dir, StoreKind::Single, batched(4));
    for e in 1..=24i64 {
        leader.apply("c", &batch(e)).unwrap();
        if e % 7 == 0 {
            // Checkpoint + rotation renames the landscape the hint is
            // derived from (segment names, checkpoint names); none of
            // it may claim an epoch the leader never published.
            leader.checkpoint_now().unwrap();
        }
        if e % 3 == 0 {
            follower.poll().unwrap();
        }
        assert!(
            follower.leader_epoch_hint() <= leader.epoch(),
            "hint overshot at epoch {e}"
        );
        assert!(follower.lag_epochs() <= leader.epoch() - follower.epoch());
    }
}

#[test]
fn rotation_and_pruning_add_no_staleness_to_a_live_tailer() {
    let dir = TempDir::new("staleness-rotate");
    let (leader, follower) = pair(&dir, StoreKind::Single, batched(4));
    for e in 1..=20i64 {
        leader.apply("c", &batch(e)).unwrap();
        if e % 5 == 0 {
            // Forces a checkpoint, a segment rotation and pruning of
            // sealed segments behind it — under the tailer's feet.
            leader.checkpoint_now().unwrap();
        }
        follower.poll().unwrap();
        assert_eq!(follower.epoch(), leader.epoch(), "fell behind at {e}");
        assert_eq!(follower.lag_epochs(), 0);
    }
    // The follower never needed a checkpoint restore: it was caught up
    // before every prune, so replay stayed pure log.
    let report = follower.poll().unwrap();
    assert_eq!(report.status, PollStatus::CaughtUp);
}
