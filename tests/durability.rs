//! Durability acceptance suite: a `DurableStore` over each of the three
//! store designs (single-lock `Catalog`, sharded-locked,
//! sharded-channel), fed hundreds of committed epochs with a mid-stream
//! re-shard, must reopen from disk to **bit-identical** estimates —
//! pure-log replay re-runs the exact live code paths, so every
//! `estimate_range` / `estimate_eq` / `total_count` probe compares by
//! `f64::to_bits`, not by tolerance. Time travel gets the same
//! treatment: `snapshot_set_at` on a retained past epoch must serve the
//! bits readers saw live at that epoch, before *and* after a recovery.
//!
//! Checkpoint-crossing recovery is covered separately with the
//! contract `docs/DURABILITY.md` actually makes for it: exact epoch,
//! exact accepted counts, exact (integer) mass — but a rebuilt bucket
//! layout.
//!
//! All disk state lives in per-test unique `TempDir`s under the OS temp
//! root (parallel-safe, removed on drop).

use dynamic_histograms::catalog::CatalogError;
use dynamic_histograms::prelude::*;

const COL: &str = "serve";
const DOMAIN: (i64, i64) = (0, 9_999);
const EPOCHS: u64 = 220;
const OPS_PER_EPOCH: u64 = 32;

#[derive(Clone, Copy)]
enum Design {
    Single,
    ShardedLock,
    ShardedChannel,
}

impl Design {
    fn kind(self) -> StoreKind {
        match self {
            Design::Single => StoreKind::Single,
            _ => StoreKind::Sharded,
        }
    }

    fn config(self) -> ColumnConfig {
        let base = ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0)).with_seed(7);
        let plan = ShardPlan::new(DOMAIN.0, DOMAIN.1, 8).unwrap();
        match self {
            Design::Single => base,
            Design::ShardedLock => base.with_plan(plan),
            Design::ShardedChannel => base.with_plan(plan.channel()),
        }
    }
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Epoch `e`'s batch: `OPS_PER_EPOCH` skewed inserts (three quarters of
/// the mass in the bottom fifth of the domain, so equal-width borders
/// are genuinely unbalanced and the mid-stream re-shard moves them).
fn epoch_ops(e: u64) -> Vec<UpdateOp> {
    let mut rng = e.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..OPS_PER_EPOCH)
        .map(|_| {
            let r = lcg(&mut rng);
            let v = if r % 4 != 0 {
                (r % 2_000) as i64
            } else {
                2_000 + (r % 8_000) as i64
            };
            UpdateOp::Insert(v)
        })
        .collect()
}

/// Every estimate surface on a fixed probe grid, as raw bits.
fn probe_bits(store: &dyn ColumnStore) -> Vec<u64> {
    let mut bits = Vec::new();
    for (a, b) in [
        (0, 9_999),
        (0, 499),
        (500, 1_999),
        (1_500, 7_000),
        (9_000, 9_999),
    ] {
        bits.push(store.estimate_range(COL, a, b).unwrap().to_bits());
    }
    for v in [0, 17, 1_000, 1_999, 5_000, 9_999] {
        bits.push(store.estimate_eq(COL, v).unwrap().to_bits());
    }
    bits.push(store.total_count(COL).unwrap().to_bits());
    bits
}

/// Same probes read off an epoch-pinned set.
fn probe_set_bits(set: &SnapshotSet) -> Vec<u64> {
    let mut bits = Vec::new();
    for (a, b) in [
        (0, 9_999),
        (0, 499),
        (500, 1_999),
        (1_500, 7_000),
        (9_000, 9_999),
    ] {
        bits.push(set.estimate_range(COL, a, b).unwrap().to_bits());
    }
    for v in [0, 17, 1_000, 1_999, 5_000, 9_999] {
        bits.push(set.estimate_eq(COL, v).unwrap().to_bits());
    }
    bits.push(set.total_count(COL).unwrap().to_bits());
    bits
}

/// The tentpole acceptance criterion, per design: ≥200 committed epochs
/// with a mid-stream re-shard, drop, `open()` — bit-identical estimates
/// at the recovered epoch, and bit-identical time travel to every
/// retained past epoch.
fn recovery_is_bit_identical(design: Design, label: &str) {
    let dir = TempDir::new(label);
    let opts = DurableOptions {
        sync: SyncPolicy::Batched(16),
        checkpoint_every: None, // pure-log replay: the bit-identical path
        retain_generations: 6,
    };

    let (live_bits, live_ring, moved) = {
        let store = DurableStore::open(dir.path(), design.kind(), opts).unwrap();
        store.register(COL, design.config()).unwrap();
        let mut moved = false;
        for e in 0..EPOCHS {
            let mut batch = WriteBatch::new();
            batch.extend(COL, epoch_ops(e));
            let epoch = store.commit(batch).unwrap();
            assert_eq!(epoch, e + 1);
            if e == EPOCHS / 2 {
                moved = store.reshard(COL).unwrap();
            }
        }
        assert_eq!(store.epoch(), EPOCHS);
        let ring: Vec<(u64, Vec<u64>)> = store
            .retained_epochs()
            .into_iter()
            .map(|e| {
                let set = store.snapshot_set_at(&[COL], e).unwrap();
                assert_eq!(set.epoch(), e);
                (e, probe_set_bits(&set))
            })
            .collect();
        assert_eq!(ring.len(), 6);
        (probe_bits(&store), ring, moved)
    }; // drop: final sync

    // Sharded designs must actually have exercised the re-shard replay.
    if !matches!(design, Design::Single) {
        assert!(moved, "{label}: skewed stream should move the borders");
    }

    let store = DurableStore::open(dir.path(), design.kind(), opts).unwrap();
    assert_eq!(store.epoch(), EPOCHS);
    assert_eq!(store.checkpoint(COL).unwrap(), EPOCHS);
    assert_eq!(store.spec(COL).unwrap(), AlgoSpec::Dc);
    assert_eq!(
        probe_bits(&store),
        live_bits,
        "{label}: recovered estimates differ"
    );

    // Replay repopulated the time-travel ring: every retained past epoch
    // serves the exact bits it served live.
    for (epoch, bits) in &live_ring {
        let set = store.snapshot_set_at(&[COL], *epoch).unwrap();
        assert_eq!(set.epoch(), *epoch);
        assert_eq!(
            &probe_set_bits(&set),
            bits,
            "{label}: time travel to {epoch} differs"
        );
    }
}

#[test]
fn single_lock_recovery_is_bit_identical() {
    recovery_is_bit_identical(Design::Single, "dur-single");
}

#[test]
fn sharded_locked_recovery_is_bit_identical() {
    recovery_is_bit_identical(Design::ShardedLock, "dur-locked");
}

#[test]
fn sharded_channel_recovery_is_bit_identical() {
    recovery_is_bit_identical(Design::ShardedChannel, "dur-channel");
}

#[test]
fn time_travel_pins_past_epochs_and_evicts_beyond_the_ring() {
    let dir = TempDir::new("dur-travel");
    let opts = DurableOptions {
        sync: SyncPolicy::Off,
        checkpoint_every: None,
        retain_generations: 4,
    };
    let store = DurableStore::open(dir.path(), StoreKind::Single, opts).unwrap();
    store.register(COL, Design::Single.config()).unwrap();
    for e in 0..10u64 {
        store.apply(COL, &epoch_ops(e)).unwrap();
    }
    assert_eq!(store.retained_epochs(), vec![7, 8, 9, 10]);

    // A retained past epoch serves exactly its prefix of the stream.
    let set = store.snapshot_set_at(&[COL], 8).unwrap();
    assert_eq!(set.epoch(), 8);
    assert_eq!(set.total_count(COL).unwrap(), (8 * OPS_PER_EPOCH) as f64);
    // ... and is immutable: still valid after further commits push the
    // ring past epoch 7 (now evicted).
    store.apply(COL, &epoch_ops(10)).unwrap();
    assert_eq!(set.total_count(COL).unwrap(), (8 * OPS_PER_EPOCH) as f64);
    assert_eq!(store.retained_epochs(), vec![8, 9, 10, 11]);

    assert_eq!(
        store.snapshot_set_at(&[COL], 7).unwrap_err(),
        CatalogError::EpochEvicted(7)
    );
    assert_eq!(
        store.snapshot_set_at(&[COL], 99).unwrap_err(),
        CatalogError::EpochEvicted(99)
    );
    assert_eq!(
        store.snapshot_set_at(&["ghost"], 11).unwrap_err(),
        CatalogError::UnknownColumn("ghost".into())
    );

    // Explicit GC narrows the ring without touching newer epochs.
    assert_eq!(store.gc_retained(10), 2);
    assert_eq!(store.retained_epochs(), vec![10, 11]);
    assert_eq!(
        store.snapshot_set_at(&[COL], 9).unwrap_err(),
        CatalogError::EpochEvicted(9)
    );
    assert!(store.snapshot_set_at(&[COL], 10).is_ok());
}

#[test]
fn plain_stores_only_pin_the_current_epoch() {
    let cat = Catalog::new();
    cat.register(COL, Design::Single.config()).unwrap();
    cat.apply(COL, &epoch_ops(0)).unwrap();
    assert_eq!(cat.snapshot_set_at(&[COL], 1).unwrap().epoch(), 1);
    assert_eq!(
        cat.snapshot_set_at(&[COL], 0).unwrap_err(),
        CatalogError::EpochEvicted(0)
    );
}

/// Recovery through a checkpoint: the cadence rotates and truncates the
/// changelog (so old segments really are gone), and `open()` restores
/// exact epoch, accepted count and mass, then replays the tail.
#[test]
fn checkpoint_cadence_truncates_and_recovers_exact_counts() {
    let dir = TempDir::new("dur-ckpt");
    let opts = DurableOptions {
        sync: SyncPolicy::Batched(32),
        checkpoint_every: Some(50),
        retain_generations: 2,
    };
    {
        let store = DurableStore::open(dir.path(), StoreKind::Sharded, opts).unwrap();
        store.register(COL, Design::ShardedLock.config()).unwrap();
        for e in 0..EPOCHS {
            let mut batch = WriteBatch::new();
            batch.extend(COL, epoch_ops(e));
            store.commit(batch).unwrap();
        }
        // Checkpoints fired at 50/100/150/200; pruning retains segments
        // back to the *oldest* on-disk checkpoint (150), so the fallback
        // checkpoint keeps a contiguous log tail: the 151.. segment plus
        // the active one.
        assert_eq!(store.segment_count(), 2);
    }
    let store = DurableStore::open(dir.path(), StoreKind::Sharded, opts).unwrap();
    assert_eq!(store.epoch(), EPOCHS);
    assert_eq!(store.checkpoint(COL).unwrap(), EPOCHS);
    // Integer stream: the synthesized restore re-inserts exactly
    // `round(total)` ops, so the recovered mass matches the stream to
    // f64 accumulation error (bucket split/merge redistributes counts
    // in floating point — live stores carry the same epsilon).
    let total = store.total_count(COL).unwrap();
    assert!(
        (total - (EPOCHS * OPS_PER_EPOCH) as f64).abs() < 1e-6,
        "recovered mass {total} drifted"
    );
    // The store keeps serving and checkpointing after recovery.
    store.apply(COL, &epoch_ops(EPOCHS)).unwrap();
    assert_eq!(store.epoch(), EPOCHS + 1);
    store.checkpoint_now().unwrap();
    assert_eq!(store.segment_count(), 2);
}

/// Columns registered mid-stream recover with their own accepted
/// counts, and a config mismatch on reopen is a typed error, not UB.
#[test]
fn mid_stream_registration_and_kind_mismatch() {
    let dir = TempDir::new("dur-register");
    let opts = DurableOptions {
        sync: SyncPolicy::PerCommit,
        checkpoint_every: None,
        retain_generations: 2,
    };
    {
        let store = DurableStore::open(dir.path(), StoreKind::Single, opts).unwrap();
        store.register("early", Design::Single.config()).unwrap();
        for e in 0..5 {
            store.apply("early", &epoch_ops(e)).unwrap();
        }
        store.register("late", Design::Single.config()).unwrap();
        let mut batch = WriteBatch::new();
        batch.extend("early", epoch_ops(5));
        batch.extend("late", epoch_ops(6));
        store.commit(batch).unwrap();
        assert_eq!(
            store
                .register("early", Design::Single.config())
                .unwrap_err(),
            CatalogError::DuplicateColumn("early".into())
        );
    }
    {
        let store = DurableStore::open(dir.path(), StoreKind::Single, opts).unwrap();
        assert_eq!(store.columns(), ["early", "late"]);
        assert_eq!(store.epoch(), 6);
        assert_eq!(store.checkpoint("early").unwrap(), 6);
        assert_eq!(store.checkpoint("late").unwrap(), 1);
    }
    // The directory is bound to its store kind.
    match DurableStore::open(dir.path(), StoreKind::Sharded, opts) {
        Err(DurableError::Wal(WalError::StoreKindMismatch { .. })) => {}
        other => panic!("expected StoreKindMismatch, got {other:?}"),
    }
}

/// Bit rot in the newest checkpoint file: recovery must fall back to
/// the previous checkpoint — whose log tail segment pruning retains —
/// and replay forward to the exact pre-damage state.
#[test]
fn damaged_newest_checkpoint_recovers_via_fallback() {
    let dir = TempDir::new("dur-ckpt-fallback");
    let opts = DurableOptions {
        sync: SyncPolicy::Batched(32),
        checkpoint_every: Some(50),
        retain_generations: 2,
    };
    {
        let store = DurableStore::open(dir.path(), StoreKind::Sharded, opts).unwrap();
        store.register(COL, Design::ShardedLock.config()).unwrap();
        for e in 0..EPOCHS {
            let mut batch = WriteBatch::new();
            batch.extend(COL, epoch_ops(e));
            store.commit(batch).unwrap();
        }
    }
    // Checkpoints 150 and 200 are on disk; rot a payload byte in the
    // newest so its CRC fails.
    let newest = dir.path().join(format!("ckpt-{:020}.ck", 200));
    let mut buf = std::fs::read(&newest).unwrap();
    let at = buf.len() - 3;
    buf[at] ^= 0x10;
    std::fs::write(&newest, &buf).unwrap();

    let store = DurableStore::open(dir.path(), StoreKind::Sharded, opts).unwrap();
    assert_eq!(store.epoch(), EPOCHS);
    assert_eq!(store.checkpoint(COL).unwrap(), EPOCHS);
    let total = store.total_count(COL).unwrap();
    assert!(
        (total - (EPOCHS * OPS_PER_EPOCH) as f64).abs() < 1e-6,
        "fallback-recovered mass {total} drifted"
    );
}

/// Mid-stream **shape** changes — a shard-count growth and an online
/// DC→DADO algorithm migration — recover bit-identically through pure
/// log replay: the `Rebuild` records carry only the plan deltas, and
/// replaying them at their exact barriers reproduces the same composed
/// spans, the same re-ingestion, the same everything.
fn rebuild_recovery_is_bit_identical(design: Design, label: &str) {
    let dir = TempDir::new(label);
    let opts = DurableOptions {
        sync: SyncPolicy::Batched(16),
        checkpoint_every: None, // pure-log replay: the bit-identical path
        retain_generations: 4,
    };

    let (live_bits, live_shape) = {
        let store = DurableStore::open(dir.path(), design.kind(), opts).unwrap();
        store.register(COL, design.config()).unwrap();
        for e in 0..EPOCHS {
            let mut batch = WriteBatch::new();
            batch.extend(COL, epoch_ops(e));
            store.commit(batch).unwrap();
            if e == EPOCHS / 3 {
                // Grow the shard count 8 → 16 behind the epoch barrier.
                assert!(store
                    .rebuild(COL, RebuildPlan::new().with_shards(16))
                    .unwrap());
            }
            if e == 2 * EPOCHS / 3 {
                // Migrate the algorithm online, keeping the new count.
                assert!(store
                    .rebuild(COL, RebuildPlan::new().with_spec(AlgoSpec::Dado))
                    .unwrap());
            }
        }
        let shape = store.column_shape(COL).unwrap().unwrap();
        assert_eq!(shape.shards, 16);
        assert_eq!(shape.spec, AlgoSpec::Dado);
        (probe_bits(&store), shape)
    }; // drop: final sync

    let store = DurableStore::open(dir.path(), design.kind(), opts).unwrap();
    assert_eq!(store.epoch(), EPOCHS);
    assert_eq!(
        probe_bits(&store),
        live_bits,
        "{label}: recovered estimates differ after shape changes"
    );
    // The live shape came back; the *registration* spec is frozen by
    // contract (`spec()` documents itself as the registered algorithm).
    assert_eq!(store.column_shape(COL).unwrap().unwrap(), live_shape);
    assert_eq!(store.spec(COL).unwrap(), AlgoSpec::Dc);
}

#[test]
fn sharded_locked_rebuild_recovery_is_bit_identical() {
    rebuild_recovery_is_bit_identical(Design::ShardedLock, "dur-rebuild-locked");
}

#[test]
fn sharded_channel_rebuild_recovery_is_bit_identical() {
    rebuild_recovery_is_bit_identical(Design::ShardedChannel, "dur-rebuild-channel");
}

/// A shape change must also survive **checkpoint**-based recovery:
/// once the cadence prunes the segments holding the `Rebuild` record,
/// the checkpoint's shape annotation is the only trace of it, and
/// `open()` must re-apply it before seeding mass so the synthesized
/// restore routes through the rebuilt borders.
#[test]
fn rebuilt_shape_survives_checkpoint_pruning() {
    let dir = TempDir::new("dur-rebuild-ckpt");
    let opts = DurableOptions {
        sync: SyncPolicy::Batched(32),
        checkpoint_every: Some(50),
        retain_generations: 2,
    };
    {
        let store = DurableStore::open(dir.path(), StoreKind::Sharded, opts).unwrap();
        store.register(COL, Design::ShardedLock.config()).unwrap();
        for e in 0..EPOCHS {
            let mut batch = WriteBatch::new();
            batch.extend(COL, epoch_ops(e));
            store.commit(batch).unwrap();
            if e == 20 {
                // Early enough that checkpoint pruning discards the
                // segment holding this record long before the end.
                assert!(store
                    .rebuild(
                        COL,
                        RebuildPlan::new()
                            .with_shards(16)
                            .with_spec(AlgoSpec::Dado)
                            .with_memory(MemoryBudget::from_kb(2.0)),
                    )
                    .unwrap());
            }
        }
        assert_eq!(store.segment_count(), 2);
    }
    let store = DurableStore::open(dir.path(), StoreKind::Sharded, opts).unwrap();
    assert_eq!(store.epoch(), EPOCHS);
    let shape = store.column_shape(COL).unwrap().unwrap();
    assert_eq!(shape.shards, 16);
    assert_eq!(shape.spec, AlgoSpec::Dado);
    assert_eq!(shape.memory, MemoryBudget::from_kb(2.0));
    let total = store.total_count(COL).unwrap();
    assert!(
        (total - (EPOCHS * OPS_PER_EPOCH) as f64).abs() < 1e-6,
        "recovered mass {total} drifted across the rebuilt checkpoint"
    );
    // The recovered store keeps serving — and keeps its shape — after
    // further commits and another checkpoint round-trip.
    store.apply(COL, &epoch_ops(EPOCHS)).unwrap();
    store.checkpoint_now().unwrap();
    assert_eq!(store.column_shape(COL).unwrap().unwrap(), shape);
}

/// Back-to-back shape changes with no commit between them all log the
/// **same barrier** (rebuilds publish no epoch); recovery must replay
/// every one of them, in order, to the identical final state. Each
/// record carries its own ordinal precisely so the stack stays
/// distinguishable — here the leader's own replay proves the records
/// round-trip and re-apply one by one.
#[test]
fn same_barrier_rebuild_stack_recovers_bit_identically() {
    let dir = TempDir::new("dur-same-barrier");
    let opts = DurableOptions {
        sync: SyncPolicy::Batched(16),
        checkpoint_every: None, // pure-log replay: the bit-identical path
        retain_generations: 2,
    };
    let (live_bits, live_shape) = {
        let store = DurableStore::open(dir.path(), StoreKind::Sharded, opts).unwrap();
        store.register(COL, Design::ShardedLock.config()).unwrap();
        for e in 0..EPOCHS / 2 {
            let mut batch = WriteBatch::new();
            batch.extend(COL, epoch_ops(e));
            store.commit(batch).unwrap();
        }
        // Three shape changes, one barrier: the skewed mass guarantees
        // the border move is a move, then the count and algorithm
        // change on top of it without an intervening commit.
        assert!(store.reshard(COL).unwrap());
        assert!(store
            .rebuild(COL, RebuildPlan::new().with_shards(16))
            .unwrap());
        assert!(store
            .rebuild(COL, RebuildPlan::new().with_spec(AlgoSpec::Dado))
            .unwrap());
        for e in EPOCHS / 2..EPOCHS {
            let mut batch = WriteBatch::new();
            batch.extend(COL, epoch_ops(e));
            store.commit(batch).unwrap();
        }
        (
            probe_bits(&store),
            store.column_shape(COL).unwrap().unwrap(),
        )
    }; // drop: final sync

    let store = DurableStore::open(dir.path(), StoreKind::Sharded, opts).unwrap();
    assert_eq!(store.epoch(), EPOCHS);
    assert_eq!(
        probe_bits(&store),
        live_bits,
        "recovered estimates differ after a same-barrier rebuild stack"
    );
    let shape = store.column_shape(COL).unwrap().unwrap();
    assert_eq!(shape.shards, 16);
    assert_eq!(shape.spec, AlgoSpec::Dado);
    assert_eq!(shape, live_shape);
}

/// The autoscale rate window must close at each *judgment*, not at each
/// generation swap: shard-load counters are cumulative per generation,
/// so a judged skew rebalance that resolves to unchanged borders (no
/// swap, counters keep accumulating) must not let the next judgment
/// count the same ops again and scale up on a throughput burst that
/// never happened.
#[test]
fn autoscale_window_is_not_inflated_by_no_swap_judgments() {
    let dir = TempDir::new("dur-autoscale-window");
    let opts = DurableOptions {
        sync: SyncPolicy::Off,
        checkpoint_every: None,
        retain_generations: 2,
    };
    let store = DurableStore::open(dir.path(), StoreKind::Sharded, opts).unwrap();
    // A two-value domain pins the borders: a 2-shard rebalance can only
    // resolve to the equal-width cuts it already has, so every skew
    // judgment below decides a plan that never swaps the generation.
    let config = ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0))
        .with_seed(7)
        .with_plan(ShardPlan::new(0, 1, 2).unwrap())
        .with_autoscale(AutoscalePolicy {
            min_shards: 2,
            max_shards: 8,
            scale_up_rate: 6,
            scale_down_rate: 0,
            skew_threshold: 1.4,
            min_interval_epochs: 1,
            min_load: 1,
        });
    store.register(COL, config).unwrap();

    // 4 skewed ops per epoch: rate 4/epoch, below the scale-up gate of
    // 6 — but the skew gate fires every epoch. A window that only
    // resets on a swap would see a cumulative 8, 12, 16, ... ops over
    // "one epoch" and scale up by the second judgment.
    for _ in 0..6 {
        let ops = [
            UpdateOp::Insert(0),
            UpdateOp::Insert(0),
            UpdateOp::Insert(0),
            UpdateOp::Insert(1),
        ];
        store.apply(COL, &ops).unwrap();
        assert_eq!(
            store.column_shape(COL).unwrap().unwrap().shards,
            2,
            "a no-swap judgment inflated the next rate window"
        );
    }

    // Positive control: a genuine 8-op epoch clears the gate and the
    // same policy scales the column 2 -> 4.
    let burst: Vec<UpdateOp> = (0..8).map(|i| UpdateOp::Insert(i % 2)).collect();
    store.apply(COL, &burst).unwrap();
    assert_eq!(store.column_shape(COL).unwrap().unwrap().shards, 4);
}

/// Policy registration rejects an autoscale policy without rate
/// hysteresis: with `scale_down_rate >= scale_up_rate` (and scale-up
/// judged first) every window above the up-gate doubles the shard
/// count and no window can ever halve it. The decorator strips
/// policies before the inner store sees them, so it must make the
/// same check itself.
#[test]
fn autoscale_registration_requires_rate_hysteresis() {
    let bad = ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0))
        .with_plan(ShardPlan::new(DOMAIN.0, DOMAIN.1, 4).unwrap())
        .with_autoscale(AutoscalePolicy {
            scale_up_rate: 64,
            scale_down_rate: 64,
            ..AutoscalePolicy::default()
        });

    let sharded = ShardedCatalog::new();
    assert!(matches!(
        sharded.register(COL, bad),
        Err(CatalogError::InvalidShardPlan(_))
    ));

    let dir = TempDir::new("dur-autoscale-validate");
    let durable =
        DurableStore::open(dir.path(), StoreKind::Sharded, DurableOptions::default()).unwrap();
    assert!(matches!(
        durable.register(COL, bad),
        Err(CatalogError::InvalidShardPlan(_))
    ));
    // Nothing was logged for the rejected column: a reopen still works
    // and still does not know it.
    drop(durable);
    let durable =
        DurableStore::open(dir.path(), StoreKind::Sharded, DurableOptions::default()).unwrap();
    assert!(!durable.contains(COL));
}

/// The restored `updates` telemetry counter is the column's historical
/// op count (inserts *and* deletes), carried through the checkpoint —
/// not a figure synthesized from the surviving mass.
#[test]
fn recovered_updates_counter_is_historical() {
    let dir = TempDir::new("dur-updates");
    let opts = DurableOptions {
        sync: SyncPolicy::PerCommit,
        checkpoint_every: None,
        retain_generations: 2,
    };
    {
        let store = DurableStore::open(dir.path(), StoreKind::Single, opts).unwrap();
        store.register(COL, Design::Single.config()).unwrap();
        // 60 inserts then 20 deletes: 80 historical ops, net mass 40.
        for e in 0..3 {
            let ops: Vec<UpdateOp> = (0..20).map(|i| UpdateOp::Insert(e * 100 + i)).collect();
            store.apply(COL, &ops).unwrap();
        }
        let deletes: Vec<UpdateOp> = (0..20).map(UpdateOp::Delete).collect();
        store.apply(COL, &deletes).unwrap();
        store.checkpoint_now().unwrap();
    }
    let store = DurableStore::open(dir.path(), StoreKind::Single, opts).unwrap();
    let snap = store.snapshot(COL).unwrap();
    assert_eq!(snap.epoch(), 4);
    assert_eq!(snap.checkpoint(), 4);
    assert_eq!(snap.updates(), 80);
    let total = store.total_count(COL).unwrap();
    assert!((total - 40.0).abs() < 1e-6, "net mass {total} drifted");
}
