//! Shard-routing invariants, checked *generically over
//! `&dyn ColumnStore`*: a `ShardedCatalog` must serve the same estimates
//! as the unsharded `Catalog` it decomposes, through the one trait both
//! implement — the replay/assertion code below never names a concrete
//! store type after construction.
//!
//! Three levels of parity, checked over property-generated mixed
//! insert/delete streams:
//!
//! 1. **Exact** — total mass equals the unsharded catalog's (and the
//!    truth's) to float precision; a *single*-shard `ShardedCatalog` is
//!    estimate-identical to a `Catalog` (superposition is lossless); a
//!    channel-mode column fed from one thread is estimate-identical to a
//!    locked-mode one (epoch-ordered drains are deterministic).
//! 2. **Sharper** — ranges aligned on shard boundaries are *exact*
//!    against the ground truth (per-shard mass conservation), which the
//!    unsharded histogram cannot promise.
//! 3. **Approximate** — arbitrary ranges stay within a KS-style band of
//!    both the truth and the unsharded estimate.

use dynamic_histograms::core::{DataDistribution, ReadHistogram, UpdateOp};
use dynamic_histograms::prelude::*;
use proptest::prelude::*;

const DOMAIN: (i64, i64) = (0, 149);

/// A batched mixed insert/delete stream over a narrow domain, plus its
/// exact live distribution.
fn stream_strategy() -> impl Strategy<Value = (Vec<Vec<UpdateOp>>, DataDistribution)> {
    (
        prop::collection::vec(DOMAIN.0..DOMAIN.1 + 1, 50..600),
        any::<u64>(),
        1usize..80,
    )
        .prop_map(|(values, seed, batch)| {
            let stream = UpdateStream::build(
                &values,
                WorkloadKind::InsertionsWithRandomDeletions {
                    delete_probability: 0.25,
                },
                seed,
            );
            let truth = DataDistribution::from_values(&stream.final_multiset());
            let ops = stream.ops();
            let batches = ops.chunks(batch).map(<[UpdateOp]>::to_vec).collect();
            (batches, truth)
        })
}

fn exact_count(truth: &DataDistribution, a: i64, b: i64) -> f64 {
    truth
        .iter()
        .filter(|&(v, _)| (a..=b).contains(&v))
        .map(|(_, c)| c as f64)
        .sum()
}

/// Builds a store of the named kind with one column `"c"` registered
/// from the same [`ColumnConfig`] — the only place a concrete type
/// appears; everything downstream drives `&dyn ColumnStore`.
fn build_store(kind: &str, config: ColumnConfig) -> Box<dyn ColumnStore> {
    let store: Box<dyn ColumnStore> = match kind {
        "catalog" => Box::new(Catalog::new()),
        "sharded" => Box::new(ShardedCatalog::new()),
        other => panic!("unknown store kind {other}"),
    };
    store.register("c", config).unwrap();
    store
}

/// Replays the batches through the store via the trait and returns the
/// flushed snapshot.
fn replay(store: &dyn ColumnStore, batches: &[Vec<UpdateOp>]) -> Snapshot {
    for b in batches {
        store.apply("c", b).unwrap();
    }
    store.flush("c").unwrap();
    store.snapshot("c").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_estimates_match_unsharded(
        case in stream_strategy(),
        seed in 0u64..1000,
        shards in 2usize..6,
    ) {
        let (batches, truth) = case;
        let memory = MemoryBudget::from_kb(0.5);
        let plan = ShardPlan::new(DOMAIN.0, DOMAIN.1, shards).unwrap();
        for spec in [AlgoSpec::Dc, AlgoSpec::Dado] {
            // Identical configs; the unsharded store ignores the plan.
            let config = ColumnConfig::new(spec, memory).with_seed(seed).with_plan(plan);
            let unsharded = build_store("catalog", config);
            let sharded = build_store("sharded", config);
            let u = replay(unsharded.as_ref(), &batches);
            let s = replay(sharded.as_ref(), &batches);

            // 1. Exact total-mass parity (both conserve mass exactly).
            let total = truth.total() as f64;
            prop_assert!((u.total_count() - total).abs() < 1e-6);
            prop_assert!(
                (s.total_count() - total).abs() < 1e-6,
                "{}: sharded total {} != {}", spec.label(), s.total_count(), total
            );

            // 2. Shard-aligned ranges are exact against ground truth.
            for i in 0..shards {
                let (a, b) = plan.shard_range(i);
                let est = s.estimate_range(a, b);
                let exact = exact_count(&truth, a, b);
                prop_assert!(
                    (est - exact).abs() < 1e-6,
                    "{}: shard {i} [{a},{b}] est {est} != exact {exact}",
                    spec.label()
                );
            }

            // 3. Arbitrary ranges: sharded stays in a KS-style band of
            // both the truth and the unsharded estimate.
            let slack = 0.25 * total + 2.0;
            let width = DOMAIN.1 - DOMAIN.0 + 1;
            for k in 0..8 {
                let a = DOMAIN.0 + k * width / 8;
                let b = a + width / 5;
                let es = s.estimate_range(a, b);
                let eu = u.estimate_range(a, b);
                let exact = exact_count(&truth, a, b);
                prop_assert!(
                    (es - exact).abs() <= slack,
                    "{}: [{a},{b}] sharded {es} vs exact {exact} (slack {slack})",
                    spec.label()
                );
                prop_assert!(
                    (es - eu).abs() <= slack,
                    "{}: [{a},{b}] sharded {es} vs unsharded {eu} (slack {slack})",
                    spec.label()
                );
            }
        }
    }

    #[test]
    fn one_shard_is_estimate_identical_to_unsharded(
        case in stream_strategy(),
        seed in 0u64..1000,
    ) {
        let (batches, _) = case;
        let memory = MemoryBudget::from_kb(0.5);
        let plan = ShardPlan::new(DOMAIN.0, DOMAIN.1, 1).unwrap();
        for spec in [AlgoSpec::Dc, AlgoSpec::Dado, AlgoSpec::EquiDepth] {
            let config = ColumnConfig::new(spec, memory).with_seed(seed).with_plan(plan);
            let u = replay(build_store("catalog", config).as_ref(), &batches);
            let s = replay(build_store("sharded", config).as_ref(), &batches);
            // Composition of one member is lossless, so every estimate
            // agrees to float precision.
            prop_assert!((u.total_count() - s.total_count()).abs() < 1e-9);
            for v in (DOMAIN.0..=DOMAIN.1).step_by(7) {
                prop_assert!(
                    (u.estimate_le(v) - s.estimate_le(v)).abs() < 1e-6,
                    "{}: CDF diverges at {v}: {} vs {}",
                    spec.label(), u.estimate_le(v), s.estimate_le(v)
                );
            }
        }
    }

    #[test]
    fn out_of_domain_ops_clamp_loudly_with_total_parity(
        case in stream_strategy(),
        seed in 0u64..1000,
        shards in 2usize..6,
    ) {
        // The stream draws values over [0, 149], but the shard domain is
        // registered as [25, 124]: a third of the value range routes
        // from outside the domain and clamps into the edge shards. The
        // clamp must be *loud* (counted per column) and must not lose
        // mass versus the unsharded store, which has no domain at all.
        let (batches, truth) = case;
        let memory = MemoryBudget::from_kb(0.5);
        let plan = ShardPlan::new(25, 124, shards).unwrap();
        let config = ColumnConfig::new(AlgoSpec::Dc, memory).with_seed(seed).with_plan(plan);
        let unsharded = build_store("catalog", config);
        let sharded = build_store("sharded", config);
        let u = replay(unsharded.as_ref(), &batches);
        let s = replay(sharded.as_ref(), &batches);

        // Exact total-mass parity: clamped routing reroutes ops, never
        // drops them.
        let total = truth.total() as f64;
        prop_assert!((u.total_count() - total).abs() < 1e-6);
        prop_assert!(
            (s.total_count() - total).abs() < 1e-6,
            "sharded total {} != {} with clamped ops", s.total_count(), total
        );

        // The counter reports exactly the inserts *and* deletes whose
        // value lay outside [25, 124]; the unsharded store clamps
        // nothing.
        let expected: u64 = batches
            .iter()
            .flatten()
            .filter(|op| {
                let v = match op {
                    UpdateOp::Insert(v) | UpdateOp::Delete(v) => *v,
                };
                !(25..=124).contains(&v)
            })
            .count() as u64;
        prop_assert_eq!(sharded.clamped_ops("c").unwrap(), expected);
        prop_assert_eq!(unsharded.clamped_ops("c").unwrap(), 0);

        // In-domain estimates stay in the same KS-style band as the
        // unsharded store (the edge shards absorb the outside mass at
        // its true values, so interior reads are not skewed).
        let slack = 0.25 * total + 2.0;
        for k in 0..5 {
            let a = 30 + k * 18;
            let b = a + 15;
            let eu = u.estimate_range(a, b);
            let es = s.estimate_range(a, b);
            prop_assert!(
                (es - eu).abs() <= slack,
                "[{a},{b}]: sharded {es} vs unsharded {eu} (slack {slack})"
            );
        }
    }

    #[test]
    fn channel_mode_is_identical_to_locked_mode_single_writer(
        case in stream_strategy(),
        seed in 0u64..1000,
        shards in 1usize..5,
    ) {
        let (batches, _) = case;
        let memory = MemoryBudget::from_kb(0.5);
        let plan = ShardPlan::new(DOMAIN.0, DOMAIN.1, shards).unwrap();
        let config = ColumnConfig::new(AlgoSpec::Dc, memory).with_seed(seed);
        let locked = build_store("sharded", config.with_plan(plan));
        let channel = build_store("sharded", config.with_plan(plan.channel()));
        let l = replay(locked.as_ref(), &batches);
        let c = replay(channel.as_ref(), &batches);
        // One writer and epoch-ordered drains: the exact same per-shard
        // replay, hence identical spans.
        prop_assert_eq!(l.spans(), c.spans());
        prop_assert_eq!(l.checkpoint(), c.checkpoint());
        prop_assert_eq!(l.epoch(), c.epoch());
    }
}
