//! Estimation straight off a `Catalog`: mixed-algorithm equi-joins over
//! column snapshots, through `dh_optimizer`'s `&dyn ReadHistogram` API.
//!
//! The build side and the probe side deliberately use *different*
//! algorithms (a maintained DC histogram against a rebuilt V-Optimal
//! one) — the deployment the unified registry exists for.

use dynamic_histograms::core::{DataDistribution, ReadHistogram, UpdateOp};
use dynamic_histograms::optimizer::{
    estimate_equi_join, exact_equi_join, propagate_chain, Predicate,
};
use dynamic_histograms::prelude::*;

/// Clustered values for one relation, plus the stream that produces them.
fn relation(seed: u64) -> (Vec<UpdateOp>, DataDistribution) {
    let cfg = SyntheticConfig::default()
        .with_clusters(80)
        .with_total_points(15_000);
    let data = cfg.generate(seed);
    let stream = UpdateStream::build(&data.values, WorkloadKind::RandomInsertions, seed);
    let truth = DataDistribution::from_values(&data.values);
    (stream.ops(), truth)
}

#[test]
fn mixed_algo_join_through_catalog_snapshots() {
    let catalog = Catalog::new();
    let memory = MemoryBudget::from_kb(1.0);
    catalog.register("r.key", AlgoSpec::Dc, memory, 2).unwrap();
    catalog
        .register("s.key", AlgoSpec::VOptimal, memory, 3)
        .unwrap();

    let (r_ops, r_truth) = relation(2);
    let (s_ops, s_truth) = relation(3);
    catalog.apply("r.key", &r_ops).unwrap();
    catalog.apply("s.key", &s_ops).unwrap();

    let r = catalog.snapshot("r.key").unwrap();
    let s = catalog.snapshot("s.key").unwrap();
    assert_eq!(r.label(), "DC");
    assert_eq!(s.label(), "SVO");

    let est = estimate_equi_join(&r, &s);
    let exact = exact_equi_join(&r_truth, &s_truth) as f64;
    assert!(exact > 0.0);
    let ratio = est / exact;
    assert!(
        (0.5..2.0).contains(&ratio),
        "mixed DC ⋈ SVO estimate off: est {est}, exact {exact}"
    );
}

#[test]
fn mixed_algo_chain_propagates_through_catalog() {
    let catalog = Catalog::new();
    let memory = MemoryBudget::from_kb(1.0);
    // Three relations, three different algorithms in one chain.
    let specs = [
        ("r1", AlgoSpec::Dado),
        ("r2", AlgoSpec::Ssbm),
        ("r3", AlgoSpec::Dc),
    ];
    let mut truths = Vec::new();
    for (i, (col, spec)) in specs.iter().enumerate() {
        catalog
            .register(*col, *spec, memory, 10 + i as u64)
            .unwrap();
        let (ops, truth) = relation(10 + i as u64);
        catalog.apply(col, &ops).unwrap();
        truths.push(truth);
    }
    let snaps: Vec<Snapshot> = specs
        .iter()
        .map(|(col, _)| catalog.snapshot(col).unwrap())
        .collect();
    let refs: Vec<&dyn ReadHistogram> = snaps.iter().map(|s| s as _).collect();
    let report = propagate_chain(&refs, &truths);
    assert_eq!(report.estimated.len(), 2);
    assert!(
        report.final_error() < 1.0,
        "fresh mixed-algo chain should stay usable: {:?}",
        report.relative_errors()
    );
}

#[test]
fn sharded_snapshots_join_like_unsharded_ones() {
    // The optimizer must not be able to tell a sharded column from an
    // unsharded one: join a ShardedCatalog snapshot against a Catalog
    // snapshot, and cross-check against the all-unsharded estimate.
    let memory = MemoryBudget::from_kb(1.0);
    let (r_ops, r_truth) = relation(21);
    let (s_ops, s_truth) = relation(22);

    let plain = Catalog::new();
    plain.register("r.key", AlgoSpec::Dc, memory, 21).unwrap();
    plain.register("s.key", AlgoSpec::Dado, memory, 22).unwrap();
    plain.apply("r.key", &r_ops).unwrap();
    plain.apply("s.key", &s_ops).unwrap();

    let sharded = ShardedCatalog::new();
    sharded
        .register(
            "s.key",
            AlgoSpec::Dado,
            memory,
            22,
            ShardPlan::new(0, 5000, 6).channel(),
        )
        .unwrap();
    sharded.apply("s.key", &s_ops).unwrap();
    sharded.flush("s.key").unwrap();

    let r = plain.snapshot("r.key").unwrap();
    let s_plain = plain.snapshot("s.key").unwrap();
    let s_sharded = sharded.snapshot("s.key").unwrap();

    let exact = exact_equi_join(&r_truth, &s_truth) as f64;
    assert!(exact > 0.0);
    let est_sharded = estimate_equi_join(&r, &s_sharded);
    let est_plain = estimate_equi_join(&r, &s_plain);
    let ratio = est_sharded / exact;
    assert!(
        (0.5..2.0).contains(&ratio),
        "DC ⋈ sharded-DADO estimate off: est {est_sharded}, exact {exact}"
    );
    // And the sharded estimate tracks the unsharded one.
    assert!(
        (est_sharded - est_plain).abs() / est_plain < 0.25,
        "sharded join {est_sharded} drifted from unsharded {est_plain}"
    );
}

#[test]
fn selection_predicates_read_off_snapshots() {
    let catalog = Catalog::new();
    catalog
        .register("t.v", AlgoSpec::Dado, MemoryBudget::from_kb(1.0), 5)
        .unwrap();
    let (ops, truth) = relation(5);
    catalog.apply("t.v", &ops).unwrap();
    let snap = catalog.snapshot("t.v").unwrap();
    for p in [
        Predicate::Le(1000),
        Predicate::Between(500, 2500),
        Predicate::Gt(4000),
    ] {
        let est = p.cardinality(&snap);
        let exact = p.exact(&truth) as f64;
        let abs_err = (est - exact).abs() / truth.total() as f64;
        assert!(
            abs_err < 0.05,
            "{p:?}: est {est} vs exact {exact} (rel-to-total {abs_err})"
        );
    }
}
