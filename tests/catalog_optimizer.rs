//! Estimation straight off a serving store: mixed-algorithm equi-joins
//! and chains over epoch-pinned snapshots, written once against
//! `&dyn ColumnStore` and exercised over both store designs.
//!
//! The build side and the probe side deliberately use *different*
//! algorithms (a maintained DC histogram against a rebuilt V-Optimal
//! one) — the deployment the unified registry exists for — and the
//! optimizer entry points (`estimate_equi_join_at`,
//! `propagate_chain_at`, `Predicate::cardinality_at`) read through
//! `SnapshotSet`s, so every cross-column estimate is pinned to one
//! store epoch.

use dynamic_histograms::core::{DataDistribution, UpdateOp};
use dynamic_histograms::optimizer::{
    estimate_equi_join, estimate_equi_join_at, exact_equi_join, propagate_chain_at, Predicate,
};
use dynamic_histograms::prelude::*;

/// Clustered values for one relation, plus the stream that produces them.
fn relation(seed: u64) -> (Vec<UpdateOp>, DataDistribution) {
    let cfg = SyntheticConfig::default()
        .with_clusters(80)
        .with_total_points(15_000);
    let data = cfg.generate(seed);
    let stream = UpdateStream::build(&data.values, WorkloadKind::RandomInsertions, seed);
    let truth = DataDistribution::from_values(&data.values);
    (stream.ops(), truth)
}

/// The store designs under test; the sharded one gets an 6-shard
/// channel-mode plan, the plain one ignores it — same config either way.
fn stores() -> Vec<(&'static str, Box<dyn ColumnStore>)> {
    vec![
        ("catalog", Box::new(Catalog::new()) as Box<dyn ColumnStore>),
        ("sharded", Box::new(ShardedCatalog::new())),
    ]
}

fn plan() -> ShardPlan {
    ShardPlan::new(0, 5000, 6).unwrap().channel()
}

#[test]
fn mixed_algo_join_through_store_snapshots() {
    let memory = MemoryBudget::from_kb(1.0);
    let (r_ops, r_truth) = relation(2);
    let (s_ops, s_truth) = relation(3);
    let exact = exact_equi_join(&r_truth, &s_truth) as f64;
    assert!(exact > 0.0);

    for (kind, store) in stores() {
        store
            .register(
                "r.key",
                ColumnConfig::new(AlgoSpec::Dc, memory)
                    .with_seed(2)
                    .with_plan(plan()),
            )
            .unwrap();
        store
            .register(
                "s.key",
                ColumnConfig::new(AlgoSpec::VOptimal, memory)
                    .with_seed(3)
                    .with_plan(plan()),
            )
            .unwrap();
        store.apply("r.key", &r_ops).unwrap();
        store.apply("s.key", &s_ops).unwrap();

        // Both columns pinned to one epoch by the entry point itself.
        let est = estimate_equi_join_at(store.as_ref(), "r.key", "s.key").unwrap();
        let ratio = est / exact;
        assert!(
            (0.5..2.0).contains(&ratio),
            "{kind}: mixed DC ⋈ SVO estimate off: est {est}, exact {exact}"
        );

        // The set the entry point reads is the same view a manual
        // snapshot_set sees: consistent labels and epoch.
        let set = store.snapshot_set(&["r.key", "s.key"]).unwrap();
        assert_eq!(set.get("r.key").unwrap().label(), "DC");
        assert_eq!(set.get("s.key").unwrap().label(), "SVO");
        assert_eq!(set.get("r.key").unwrap().epoch(), set.epoch());
        assert_eq!(set.get("s.key").unwrap().epoch(), set.epoch());
        let manual = estimate_equi_join(set.get("r.key").unwrap(), set.get("s.key").unwrap());
        assert!((manual - est).abs() < 1e-9 * est.max(1.0), "{kind}");
    }
}

#[test]
fn mixed_algo_chain_propagates_through_store() {
    let memory = MemoryBudget::from_kb(1.0);
    // Three relations, three different algorithms in one chain.
    let specs = [
        ("r1", AlgoSpec::Dado),
        ("r2", AlgoSpec::Ssbm),
        ("r3", AlgoSpec::Dc),
    ];
    for (kind, store) in stores() {
        let mut truths = Vec::new();
        for (i, (col, spec)) in specs.iter().enumerate() {
            store
                .register(
                    col,
                    ColumnConfig::new(*spec, memory)
                        .with_seed(10 + i as u64)
                        .with_plan(plan()),
                )
                .unwrap();
            let (ops, truth) = relation(10 + i as u64);
            store.apply(col, &ops).unwrap();
            truths.push(truth);
        }
        let report = propagate_chain_at(store.as_ref(), &["r1", "r2", "r3"], &truths).unwrap();
        assert_eq!(report.estimated.len(), 2);
        assert!(
            report.final_error() < 1.0,
            "{kind}: fresh mixed-algo chain should stay usable: {:?}",
            report.relative_errors()
        );
    }
}

#[test]
fn sharded_snapshots_join_like_unsharded_ones() {
    // The optimizer must not be able to tell a sharded column from an
    // unsharded one: join a ShardedCatalog snapshot against a Catalog
    // snapshot, and cross-check against the all-unsharded estimate.
    let memory = MemoryBudget::from_kb(1.0);
    let (r_ops, r_truth) = relation(21);
    let (s_ops, s_truth) = relation(22);

    let plain = Catalog::new();
    plain
        .register(
            "r.key",
            ColumnConfig::new(AlgoSpec::Dc, memory).with_seed(21),
        )
        .unwrap();
    plain
        .register(
            "s.key",
            ColumnConfig::new(AlgoSpec::Dado, memory).with_seed(22),
        )
        .unwrap();
    plain.apply("r.key", &r_ops).unwrap();
    plain.apply("s.key", &s_ops).unwrap();

    let sharded = ShardedCatalog::new();
    sharded
        .register(
            "s.key",
            ColumnConfig::new(AlgoSpec::Dado, memory)
                .with_seed(22)
                .with_plan(plan()),
        )
        .unwrap();
    sharded.apply("s.key", &s_ops).unwrap();
    sharded.flush("s.key").unwrap();

    let r = plain.snapshot("r.key").unwrap();
    let s_plain = plain.snapshot("s.key").unwrap();
    let s_sharded = sharded.snapshot("s.key").unwrap();

    let exact = exact_equi_join(&r_truth, &s_truth) as f64;
    assert!(exact > 0.0);
    let est_sharded = estimate_equi_join(&r, &s_sharded);
    let est_plain = estimate_equi_join(&r, &s_plain);
    let ratio = est_sharded / exact;
    assert!(
        (0.5..2.0).contains(&ratio),
        "DC ⋈ sharded-DADO estimate off: est {est_sharded}, exact {exact}"
    );
    // And the sharded estimate tracks the unsharded one.
    assert!(
        (est_sharded - est_plain).abs() / est_plain < 0.25,
        "sharded join {est_sharded} drifted from unsharded {est_plain}"
    );
}

#[test]
fn selection_predicates_read_off_stores() {
    let (ops, truth) = relation(5);
    for (kind, store) in stores() {
        store
            .register(
                "t.v",
                ColumnConfig::new(AlgoSpec::Dado, MemoryBudget::from_kb(1.0))
                    .with_seed(5)
                    .with_plan(plan()),
            )
            .unwrap();
        store.apply("t.v", &ops).unwrap();
        for p in [
            Predicate::Le(1000),
            Predicate::Between(500, 2500),
            Predicate::Gt(4000),
        ] {
            let est = p.cardinality_at(store.as_ref(), "t.v").unwrap();
            let exact = p.exact(&truth) as f64;
            let abs_err = (est - exact).abs() / truth.total() as f64;
            assert!(
                abs_err < 0.05,
                "{kind}: {p:?}: est {est} vs exact {exact} (rel-to-total {abs_err})"
            );
        }
    }
}
