//! Integration tests for the shared-nothing layer (Section 8) and the 2-D
//! extension.

use dynamic_histograms::core::dynamic::{AbsoluteDeviation, Grid2dHistogram};
use dynamic_histograms::core::{ks_error, DataDistribution, MemoryBudget};
use dynamic_histograms::distributed::{
    build_global, superimpose, DistributedConfig, GlobalStrategy,
};
use dynamic_histograms::prelude::*;
use dynamic_histograms::statics::SsbmHistogram as Ssbm;

fn pooled(sites: &[dynamic_histograms::distributed::SiteData]) -> DataDistribution {
    let mut d = DataDistribution::new();
    for s in sites {
        for &v in &s.values {
            d.insert(v);
        }
    }
    d
}

#[test]
fn superposition_of_exact_members_is_lossless() {
    // The paper: "this process does not involve any loss of information".
    let cfg = DistributedConfig {
        total_points: 10_000,
        ..DistributedConfig::default()
    };
    let sites = cfg.generate_sites(3);
    let members: Vec<_> = sites
        .iter()
        .map(|s| dynamic_histograms::statics::ExactHistogram::from_values(&s.values).spans())
        .collect();
    let composite = superimpose(&members);
    let truth = pooled(&sites);
    let h = Ssbm::from_spans(composite);
    assert!(
        ks_error(&h, &truth) < 1e-9,
        "superimposing exact members must be exact"
    );
}

#[test]
fn more_memory_helps_both_strategies() {
    let sites_cfg = DistributedConfig {
        total_points: 20_000,
        ..DistributedConfig::default()
    };
    let sites = sites_cfg.generate_sites(5);
    let truth = pooled(&sites);
    let mut prev = (f64::INFINITY, f64::INFINITY);
    for bytes in [100usize, 400, 1600] {
        let cfg = DistributedConfig {
            memory: MemoryBudget::from_bytes(bytes),
            ..sites_cfg.clone()
        };
        let hu = ks_error(
            &build_global(&cfg, &sites, GlobalStrategy::HistogramThenUnion),
            &truth,
        );
        let uh = ks_error(
            &build_global(&cfg, &sites, GlobalStrategy::UnionThenHistogram),
            &truth,
        );
        assert!(
            hu <= prev.0 + 0.02 && uh <= prev.1 + 0.02,
            "quality regressed with more memory: {prev:?} -> ({hu}, {uh})"
        );
        prev = (hu, uh);
    }
    assert!(prev.0 < 0.05 && prev.1 < 0.05);
}

#[test]
fn single_site_reduces_to_local_histogram() {
    let cfg = DistributedConfig {
        sites: 1,
        total_points: 5_000,
        ..DistributedConfig::default()
    };
    let sites = cfg.generate_sites(9);
    let truth = pooled(&sites);
    let hu = build_global(&cfg, &sites, GlobalStrategy::HistogramThenUnion);
    let uh = build_global(&cfg, &sites, GlobalStrategy::UnionThenHistogram);
    // With one member, both strategies build SSBM on the same data; the
    // superposition+re-reduction path may cut borders differently but the
    // quality must agree closely.
    let d = (ks_error(&hu, &truth) - ks_error(&uh, &truth)).abs();
    assert!(d < 0.02, "single-site strategies diverged: {d}");
}

#[test]
fn grid2d_tracks_moving_hotspot() {
    let mut h = Grid2dHistogram::<AbsoluteDeviation>::new(48, (0, 127), (0, 127));
    // Hot-spot phase 1 at (20, 20).
    let mut live: Vec<(i64, i64)> = Vec::new();
    for i in 0..4000i64 {
        let p = (20 + i % 8, 20 + (i / 8) % 8);
        h.insert(p.0, p.1);
        live.push(p);
    }
    // It moves: delete phase 1, insert at (100, 100).
    for &(x, y) in &live {
        h.delete(x, y);
    }
    for i in 0..4000i64 {
        h.insert(100 + i % 8, 100 + (i / 8) % 8);
    }
    let old = h.estimate_range((16, 31), (16, 31));
    let new = h.estimate_range((96, 111), (96, 111));
    assert!(
        old < 400.0,
        "old hot-spot should have drained, estimate {old}"
    );
    assert!(
        new > 3200.0,
        "new hot-spot should be captured, estimate {new}"
    );
}

#[test]
fn grid2d_full_domain_estimate_equals_total() {
    let mut h = Grid2dHistogram::<AbsoluteDeviation>::new(16, (0, 63), (0, 63));
    for i in 0..3000i64 {
        h.insert((i * 17) % 64, (i * 29) % 64);
    }
    let all = h.estimate_range((0, 63), (0, 63));
    assert!((all - 3000.0).abs() < 1e-6);
    assert!((h.total_count() - 3000.0).abs() < 1e-6);
}

#[test]
fn multisub_histogram_matches_two_sub_engine_quality() {
    // K = 2 MultiSub should be in the same quality league as the dedicated
    // two-counter DADO engine on the same stream.
    use dynamic_histograms::core::dynamic::MultiSubHistogram;
    let cfg = SyntheticConfig::default().with_total_points(15_000);
    let data = cfg.generate(11);
    let values = data.shuffled(11);
    let truth = DataDistribution::from_values(&values);

    let mut dado = DadoHistogram::new(40);
    let mut multi2 = MultiSubHistogram::<AbsoluteDeviation>::new(40, 2);
    for &v in &values {
        dado.insert(v);
        multi2.insert(v);
    }
    let ks_dado = ks_error(&dado, &truth);
    let ks_multi = ks_error(&multi2, &truth);
    assert!(
        ks_multi < ks_dado * 3.0 + 0.01,
        "K=2 MultiSub ({ks_multi}) should track DADO ({ks_dado})"
    );
}

#[test]
fn finer_subdivisions_cost_quality_at_equal_memory() {
    // The Section 4 ablation as a regression test: at equal bytes, K = 8
    // sub-buckets should not beat K = 2 (and typically loses) because each
    // counter costs buckets.
    use dynamic_histograms::core::dynamic::MultiSubHistogram;
    let memory = MemoryBudget::from_kb(0.5);
    let cfg = SyntheticConfig::default().with_total_points(15_000);
    let mut ks2_total = 0.0;
    let mut ks8_total = 0.0;
    for seed in 0..3 {
        let data = cfg.generate(seed);
        let values = data.shuffled(seed);
        let truth = DataDistribution::from_values(&values);
        let mut h2 =
            MultiSubHistogram::<AbsoluteDeviation>::new(memory.buckets_with_counters(2), 2);
        let mut h8 =
            MultiSubHistogram::<AbsoluteDeviation>::new(memory.buckets_with_counters(8), 8);
        for &v in &values {
            h2.insert(v);
            h8.insert(v);
        }
        ks2_total += ks_error(&h2, &truth);
        ks8_total += ks_error(&h8, &truth);
    }
    assert!(
        ks2_total <= ks8_total * 1.2,
        "K=2 ({ks2_total}) should not lose clearly to K=8 ({ks8_total})"
    );
}
