//! Wait-free read-path regression suite (see `docs/READ_PATH.md`).
//!
//! Three contracts, each driven over the single-lock store and both
//! sharded ingestion designs:
//!
//! * **Zero-lock hot path.** While writers burst-commit, readers serving
//!   the current epoch off `snapshot` / `snapshot_set` / `estimate_*`
//!   must never fall back to the gated pinned render:
//!   `ReadStats::slow_renders` stays exactly 0 through the whole race.
//! * **Bit-identical caching.** A cached estimate is the memo of the
//!   first computation on the same immutable snapshot, so repeating a
//!   probe — and comparing against the uncached `Snapshot` arithmetic —
//!   must agree to the exact f64 bits, at every epoch.
//! * **No stale cache.** The predicate cache lives inside one epoch
//!   generation; a commit or a forced re-shard swaps the generation, so
//!   no reader can ever observe a pre-swap cached value: immediately
//!   after `apply`/`commit` returns, cached totals equal the new exact
//!   total, and under a racing re-sharder every cached estimate is
//!   still a whole-epoch quantity.

use dynamic_histograms::prelude::*;
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

const SHARDS: usize = 8;
const DOMAIN: (i64, i64) = (0, 799);
/// Inserts per column per committed batch.
const PER_BATCH: i64 = 8;

fn register_columns(store: &dyn ColumnStore, channel: bool) {
    let plan = ShardPlan::new(DOMAIN.0, DOMAIN.1, SHARDS).unwrap();
    let plan = if channel { plan.channel() } else { plan };
    let config = ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0))
        .with_seed(7)
        .with_plan(plan);
    store.register("a", config).unwrap();
    store.register("b", config).unwrap();
}

/// Batch `b`: exactly [`PER_BATCH`] inserts into each column, spread so
/// every shard range receives one.
fn batch(b: i64) -> WriteBatch {
    let mut batch = WriteBatch::new();
    for s in 0..PER_BATCH {
        let v = s * 100 + (b % 100);
        batch.insert("a", v).insert("b", v);
    }
    batch
}

/// The acceptance race: readers hammer every hot-path entry point while
/// a writer burst-commits. The slow-path counter must stay 0 — the hot
/// path took no lock and performed no retry for the entire run.
fn run_commit_burst(store: &dyn ColumnStore, label: &str) {
    store.commit(batch(0)).unwrap();
    let base = store.read_stats();
    assert_eq!(
        base.slow_renders, 0,
        "{label}: setup already used the slow path"
    );

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let store = &store;
            let done = &done;
            scope.spawn(move || {
                let mut reads = 0u64;
                while !done.load(Ordering::Acquire) || reads == 0 {
                    // Every provided read is a hot-path entry point.
                    let total = store.total_count("a").unwrap();
                    let range = store.estimate_range("a", DOMAIN.0, DOMAIN.1).unwrap();
                    // Each call pins its own (monotone) epoch, so the
                    // later full-domain probe can only see more mass.
                    assert!(
                        range + 1e-6 >= total,
                        "{label}: full-domain range {range} regressed below total {total}"
                    );
                    let _ = store.estimate_eq("b", 5).unwrap();
                    let snap = store.snapshot("b").unwrap();
                    // Whole epochs only, even off the cached front.
                    assert!(
                        (snap.total_count() - PER_BATCH as f64 * snap.epoch() as f64).abs() < 1e-6,
                        "{label}: snapshot mass {} at epoch {} is not whole",
                        snap.total_count(),
                        snap.epoch()
                    );
                    let set = store.snapshot_set(&["a", "b"]).unwrap();
                    let (ta, tb) = (set.total_count("a").unwrap(), set.total_count("b").unwrap());
                    assert!(
                        (ta - tb).abs() < 1e-6,
                        "{label}: cached set torn across columns: {ta} vs {tb}"
                    );
                    assert!(
                        (ta - PER_BATCH as f64 * set.epoch() as f64).abs() < 1e-6,
                        "{label}: cached set mass {ta} at epoch {} is not whole",
                        set.epoch()
                    );
                    reads += 1;
                }
            });
        }
        std::thread::scope(|writers| {
            let store = &store;
            writers.spawn(move || {
                for b in 1..200 {
                    store.commit(batch(b)).unwrap();
                }
            });
        });
        done.store(true, Ordering::Release);
    });

    let stats = store.read_stats();
    assert_eq!(
        stats.slow_renders, 0,
        "{label}: hot path fell back to the gated render under a commit burst: {stats:?}"
    );
    assert!(stats.fast_reads > 0, "{label}: no fast reads recorded");
    assert!(
        stats.cache_hits + stats.cache_misses > 0,
        "{label}: estimates never touched the front cache: {stats:?}"
    );
    assert!(
        stats.cache_invalidations > base.cache_invalidations,
        "{label}: commits never swapped the generation: {stats:?}"
    );
}

#[test]
fn single_lock_hot_path_never_slow_renders_under_commit_burst() {
    let store = Catalog::new();
    register_columns(&store, false);
    run_commit_burst(&store, "catalog");
}

#[test]
fn sharded_locked_hot_path_never_slow_renders_under_commit_burst() {
    let store = ShardedCatalog::new();
    register_columns(&store, false);
    run_commit_burst(&store, "sharded-locked");
}

#[test]
fn sharded_channel_hot_path_never_slow_renders_under_commit_burst() {
    let store = ShardedCatalog::new();
    register_columns(&store, true);
    run_commit_burst(&store, "sharded-channel");
}

/// Read-your-writes through the cache: the generation swap happens
/// before `apply`/`commit` returns, so the very next cached total is the
/// new exact total — a stale cache entry would fail on the first
/// iteration that follows a write.
fn run_no_stale_after_writes(store: &dyn ColumnStore, label: &str) {
    let mut expected = 0.0f64;
    for round in 0..50i64 {
        let values: Vec<UpdateOp> = (0..10)
            .map(|i| UpdateOp::Insert((round * 16 + i) % 800))
            .collect();
        store.apply("a", &values).unwrap();
        expected += 10.0;
        let total = store.total_count("a").unwrap();
        assert!(
            (total - expected).abs() < 1e-6,
            "{label}: round {round}: cached total {total} is stale (expected {expected})"
        );
        let range = store.estimate_range("a", DOMAIN.0, DOMAIN.1).unwrap();
        assert!(
            (range - expected).abs() < 1e-6,
            "{label}: round {round}: cached range {range} is stale (expected {expected})"
        );
        // Repeat the probe: same key, same generation — a cache hit that
        // must reproduce the exact bits of the miss that filled it.
        let again = store.estimate_range("a", DOMAIN.0, DOMAIN.1).unwrap();
        assert_eq!(again.to_bits(), range.to_bits(), "{label}: round {round}");
    }
    let stats = store.read_stats();
    assert_eq!(stats.slow_renders, 0, "{label}: {stats:?}");
    // The second identical probe per round is a hit on the fresh
    // generation's cache.
    assert!(stats.cache_hits > 0, "{label}: {stats:?}");
}

#[test]
fn single_lock_cache_is_never_stale_after_apply() {
    let store = Catalog::new();
    register_columns(&store, false);
    run_no_stale_after_writes(&store, "catalog");
}

#[test]
fn sharded_locked_cache_is_never_stale_after_apply() {
    let store = ShardedCatalog::new();
    register_columns(&store, false);
    run_no_stale_after_writes(&store, "sharded-locked");
}

#[test]
fn sharded_channel_cache_is_never_stale_after_apply() {
    let store = ShardedCatalog::new();
    register_columns(&store, true);
    run_no_stale_after_writes(&store, "sharded-channel");
}

/// A forced re-shard rebuilds cells at the *same* epoch, so it must
/// force-swap the generation (the stale-rendering rule): mass is
/// conserved, the invalidation counter moves, and cached estimates keep
/// matching the exact post-reshard state.
#[test]
fn reshard_swaps_the_generation_and_conserves_cached_mass() {
    for channel in [false, true] {
        let store = ShardedCatalog::new();
        register_columns(&store, channel);
        let label = if channel { "channel" } else { "locked" };
        // Skewed mass so balanced borders differ from the uniform plan.
        let skew: Vec<UpdateOp> = (0..2000).map(|i| UpdateOp::Insert(i % 50)).collect();
        store.apply("a", &skew).unwrap();
        let before = store.total_count("a").unwrap();
        let inv_before = store.read_stats().cache_invalidations;

        let moved = store.reshard("a").unwrap();
        assert!(moved, "{label}: skewed load left the borders unmoved");
        let stats = store.read_stats();
        assert!(
            stats.cache_invalidations > inv_before,
            "{label}: re-shard left the old generation (and its cache) in place: {stats:?}"
        );
        let after = store.total_count("a").unwrap();
        assert!(
            (after - before).abs() < 1e-6,
            "{label}: re-shard changed cached mass: {before} -> {after}"
        );
        assert_eq!(store.read_stats().slow_renders, 0, "{label}");
    }
}

/// Readers race a writer *and* a forcing re-sharder: every cached
/// estimate observed must still be a whole-epoch quantity (a stale cache
/// entry from the pre-swap generation would show a fractional or
/// off-epoch total), and the hot path never slow-renders.
#[test]
fn racing_reshard_never_exposes_a_stale_cache_entry() {
    let store = ShardedCatalog::new();
    register_columns(&store, false);
    store.commit(batch(0)).unwrap();
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let store = &store;
            let done = &done;
            scope.spawn(move || {
                let mut reads = 0u64;
                while !done.load(Ordering::Acquire) || reads == 0 {
                    let set = store.snapshot_set(&["a", "b"]).unwrap();
                    let total = set.total_count("a").unwrap();
                    let expected = PER_BATCH as f64 * set.epoch() as f64;
                    assert!(
                        (total - expected).abs() < 1e-6,
                        "stale cached estimate: epoch {} total {total} (expected {expected})",
                        set.epoch()
                    );
                    let range = set.estimate_range("a", DOMAIN.0, DOMAIN.1).unwrap();
                    assert!(
                        (range - expected).abs() < 1e-6,
                        "stale cached range at epoch {}: {range} (expected {expected})",
                        set.epoch()
                    );
                    reads += 1;
                }
            });
        }
        {
            let store = &store;
            let done = &done;
            scope.spawn(move || loop {
                let finished = done.load(Ordering::Acquire);
                store.reshard("a").unwrap();
                store.reshard("b").unwrap();
                if finished {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            });
        }
        std::thread::scope(|writers| {
            let store = &store;
            writers.spawn(move || {
                for b in 1..150 {
                    // Drifting values keep the balanced borders moving.
                    store.commit(batch(b * 37)).unwrap();
                }
            });
        });
        done.store(true, Ordering::Release);
    });
    let stats = store.read_stats();
    assert_eq!(stats.slow_renders, 0, "{stats:?}");
    assert!(stats.fast_reads > 0, "{stats:?}");
}

/// Strategies for the bit-identity property: a value multiset plus probe
/// points inside (and straddling) the domain.
fn bit_identity_inputs() -> impl Strategy<Value = (Vec<i64>, i64, i64, i64)> {
    (
        prop::collection::vec(0i64..400, 1..300),
        -50i64..450,
        -50i64..450,
        -50i64..450,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cached estimates are **bit-identical** to uncached ones, at every
    /// epoch, on every store design: the cache memoizes the exact f64
    /// the first computation produced, and the uncached arithmetic runs
    /// on the same immutable snapshot.
    #[test]
    fn cached_estimates_are_bit_identical_to_uncached(inputs in bit_identity_inputs()) {
        let (values, p, q, e) = inputs;
        let (lo, hi) = (p.min(q), p.max(q));
        let stores: Vec<(&str, Box<dyn ColumnStore>)> = vec![
            ("catalog", Box::new(Catalog::new())),
            ("sharded-locked", Box::new(ShardedCatalog::new())),
            ("sharded-channel", Box::new(ShardedCatalog::new())),
        ];
        for (label, store) in stores {
            register_columns(store.as_ref(), label == "sharded-channel");
            // Two epochs: half the values per commit, probing after each.
            let mid = values.len() / 2;
            for chunk in [&values[..mid], &values[mid..]] {
                if chunk.is_empty() {
                    continue;
                }
                let ops: Vec<UpdateOp> = chunk.iter().map(|&v| UpdateOp::Insert(v)).collect();
                store.apply("a", &ops).unwrap();

                // Uncached ground truth: plain snapshot arithmetic.
                let snap = store.snapshot("a").unwrap();
                let plain_range = snap.estimate_range(lo, hi);
                let plain_eq = snap.estimate_eq(e);
                let plain_total = snap.total_count();

                // Probe twice so both the miss->fill and the hit path are
                // compared; every read must reproduce the exact bits.
                for pass in 0..2 {
                    let range = store.estimate_range("a", lo, hi).unwrap();
                    let eq = store.estimate_eq("a", e).unwrap();
                    let total = store.total_count("a").unwrap();
                    prop_assert_eq!(
                        range.to_bits(), plain_range.to_bits(),
                        "{}: pass {}: cached range {} != uncached {}",
                        label, pass, range, plain_range
                    );
                    prop_assert_eq!(
                        eq.to_bits(), plain_eq.to_bits(),
                        "{}: pass {}: cached eq {} != uncached {}",
                        label, pass, eq, plain_eq
                    );
                    prop_assert_eq!(
                        total.to_bits(), plain_total.to_bits(),
                        "{}: pass {}: cached total {} != uncached {}",
                        label, pass, total, plain_total
                    );
                }
            }
            let stats = store.read_stats();
            prop_assert_f(stats.cache_hits > 0, "cache never hit");
            prop_assert_f(stats.slow_renders == 0, "slow path engaged");
        }
    }
}

/// proptest's `prop_assert!` only works inside `proptest!`; this adapter
/// lets the closing checks read naturally.
fn prop_assert_f(cond: bool, msg: &str) {
    assert!(cond, "{msg}");
}
