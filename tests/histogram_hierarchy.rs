//! Cross-crate integration test: the classic histogram quality hierarchy.
//!
//! The paper (Section 2, citing [8]) relies on the established ordering:
//! Equi-Width is usually inferior to Equi-Depth, which is inferior to
//! Compressed and V-Optimal; the paper adds SADO ≈ SVO ≈ SSBM. This test
//! verifies the full hierarchy on the paper's own data generator.
//!
//! The per-algorithm average KS errors are computed once and shared by
//! every test through a `OnceLock` (several tests compare the same
//! algorithms, and the exact-DP builds are the expensive part), with the
//! per-seed dataset and exact distribution also built once per seed.

use dynamic_histograms::core::{ks_error, DataDistribution, HistogramClass, MemoryBudget};
use dynamic_histograms::prelude::*;
use std::sync::OnceLock;

/// Average KS error per static algorithm over the shared configuration.
struct Metrics {
    ew: f64,
    ed: f64,
    sc: f64,
    svo: f64,
    sado: f64,
    ssbm: f64,
}

fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let memory = MemoryBudget::from_kb(0.25);
        let n = memory.buckets(HistogramClass::BorderAndCount);
        let cfg = SyntheticConfig::default()
            .with_clusters(50)
            .with_cluster_sd(1.0)
            .with_size_skew(1.5)
            .with_total_points(20_000);
        let seeds = 5;
        let mut sums = [0.0f64; 6];
        for seed in 0..seeds {
            let data = cfg.generate(seed);
            let truth = DataDistribution::from_values(&data.values);
            let builds: [f64; 6] = [
                ks_error(&EquiWidthHistogram::build(&truth, n), &truth),
                ks_error(&EquiDepthHistogram::build(&truth, n), &truth),
                ks_error(&CompressedHistogram::build(&truth, n), &truth),
                ks_error(&VOptimalHistogram::build(&truth, n), &truth),
                ks_error(&SadoHistogram::build(&truth, n), &truth),
                ks_error(&SsbmHistogram::build(&truth, n), &truth),
            ];
            for (s, b) in sums.iter_mut().zip(builds) {
                *s += b;
            }
        }
        for s in &mut sums {
            *s /= seeds as f64;
        }
        Metrics {
            ew: sums[0],
            ed: sums[1],
            sc: sums[2],
            svo: sums[3],
            sado: sums[4],
            ssbm: sums[5],
        }
    })
}

#[test]
fn equi_width_is_worst() {
    let m = metrics();
    assert!(
        m.ed < m.ew,
        "Equi-Depth ({}) should beat Equi-Width ({}) on skewed data",
        m.ed,
        m.ew
    );
}

#[test]
fn compressed_at_least_matches_equi_depth() {
    let m = metrics();
    assert!(
        m.sc <= m.ed * 1.05 + 1e-6,
        "Compressed ({}) should not lose to Equi-Depth ({})",
        m.sc,
        m.ed
    );
}

#[test]
fn voptimal_family_is_in_the_same_league_as_compressed() {
    // V-Optimal minimizes frequency variance, not the KS statistic, so SC
    // can win on particular data (the paper's Figs. 9-12 show the SC and
    // SVO curves crossing). The robust claim is that all of them sit in
    // the same quality band, well ahead of Equi-Width.
    let m = metrics();
    assert!(
        m.svo <= m.sc * 2.5 + 0.01,
        "V-Optimal ({}) drifted out of Compressed's league ({})",
        m.svo,
        m.sc
    );
    assert!(
        m.sado <= m.sc * 2.5 + 0.01,
        "SADO ({}) drifted out of Compressed's league ({})",
        m.sado,
        m.sc
    );
    assert!(
        m.svo < m.ew,
        "V-Optimal ({}) should beat Equi-Width ({})",
        m.svo,
        m.ew
    );
    assert!(
        m.sado < m.ew,
        "SADO ({}) should beat Equi-Width ({})",
        m.sado,
        m.ew
    );
}

#[test]
fn ssbm_is_close_to_voptimal() {
    // The paper's headline SSBM claim (Section 5): quality comparable to
    // SVO at far lower construction cost.
    let m = metrics();
    assert!(
        m.ssbm <= 1.8 * m.svo + 0.005,
        "SSBM ({}) should be comparable to SVO ({})",
        m.ssbm,
        m.svo
    );
}

#[test]
fn sado_and_svo_are_equivalent_statically() {
    // Section 4.1: "there is essentially no difference between the static
    // V-optimal and the static Average-Deviation optimal histograms".
    let m = metrics();
    let ratio = (m.sado / m.svo).max(m.svo / m.sado);
    assert!(
        ratio < 1.6,
        "SADO ({}) and SVO ({}) should be close statically",
        m.sado,
        m.svo
    );
}
