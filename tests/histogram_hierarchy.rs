//! Cross-crate integration test: the classic histogram quality hierarchy.
//!
//! The paper (Section 2, citing [8]) relies on the established ordering:
//! Equi-Width is usually inferior to Equi-Depth, which is inferior to
//! Compressed and V-Optimal; the paper adds SADO ≈ SVO ≈ SSBM. This test
//! verifies the full hierarchy on the paper's own data generator.

use dynamic_histograms::core::{ks_error, DataDistribution, HistogramClass, MemoryBudget};
use dynamic_histograms::prelude::*;

fn average_ks<F>(build: F) -> f64
where
    F: Fn(&DataDistribution, usize) -> f64,
{
    let memory = MemoryBudget::from_kb(0.25);
    let n = memory.buckets(HistogramClass::BorderAndCount);
    let cfg = SyntheticConfig::default()
        .with_clusters(50)
        .with_cluster_sd(1.0)
        .with_size_skew(1.5)
        .with_total_points(20_000);
    let mut total = 0.0;
    let seeds = 5;
    for seed in 0..seeds {
        let data = cfg.generate(seed);
        let truth = DataDistribution::from_values(&data.values);
        total += build(&truth, n);
    }
    total / seeds as f64
}

#[test]
fn equi_width_is_worst() {
    let ew = average_ks(|t, n| ks_error(&EquiWidthHistogram::build(t, n), t));
    let ed = average_ks(|t, n| ks_error(&EquiDepthHistogram::build(t, n), t));
    assert!(
        ed < ew,
        "Equi-Depth ({ed}) should beat Equi-Width ({ew}) on skewed data"
    );
}

#[test]
fn compressed_at_least_matches_equi_depth() {
    let ed = average_ks(|t, n| ks_error(&EquiDepthHistogram::build(t, n), t));
    let sc = average_ks(|t, n| ks_error(&CompressedHistogram::build(t, n), t));
    assert!(
        sc <= ed * 1.05 + 1e-6,
        "Compressed ({sc}) should not lose to Equi-Depth ({ed})"
    );
}

#[test]
fn voptimal_family_is_in_the_same_league_as_compressed() {
    // V-Optimal minimizes frequency variance, not the KS statistic, so SC
    // can win on particular data (the paper's Figs. 9-12 show the SC and
    // SVO curves crossing). The robust claim is that all of them sit in
    // the same quality band, well ahead of Equi-Width.
    let ew = average_ks(|t, n| ks_error(&EquiWidthHistogram::build(t, n), t));
    let sc = average_ks(|t, n| ks_error(&CompressedHistogram::build(t, n), t));
    let svo = average_ks(|t, n| ks_error(&VOptimalHistogram::build(t, n), t));
    let sado = average_ks(|t, n| ks_error(&SadoHistogram::build(t, n), t));
    assert!(
        svo <= sc * 2.5 + 0.01,
        "V-Optimal ({svo}) drifted out of Compressed's league ({sc})"
    );
    assert!(
        sado <= sc * 2.5 + 0.01,
        "SADO ({sado}) drifted out of Compressed's league ({sc})"
    );
    assert!(svo < ew, "V-Optimal ({svo}) should beat Equi-Width ({ew})");
    assert!(sado < ew, "SADO ({sado}) should beat Equi-Width ({ew})");
}

#[test]
fn ssbm_is_close_to_voptimal() {
    // The paper's headline SSBM claim (Section 5): quality comparable to
    // SVO at far lower construction cost.
    let svo = average_ks(|t, n| ks_error(&VOptimalHistogram::build(t, n), t));
    let ssbm = average_ks(|t, n| ks_error(&SsbmHistogram::build(t, n), t));
    assert!(
        ssbm <= 1.8 * svo + 0.005,
        "SSBM ({ssbm}) should be comparable to SVO ({svo})"
    );
}

#[test]
fn sado_and_svo_are_equivalent_statically() {
    // Section 4.1: "there is essentially no difference between the static
    // V-optimal and the static Average-Deviation optimal histograms".
    let svo = average_ks(|t, n| ks_error(&VOptimalHistogram::build(t, n), t));
    let sado = average_ks(|t, n| ks_error(&SadoHistogram::build(t, n), t));
    let ratio = (sado / svo).max(svo / sado);
    assert!(
        ratio < 1.6,
        "SADO ({sado}) and SVO ({svo}) should be close statically"
    );
}
