//! Torn-tail recovery suite: the on-disk extension of
//! `tests/txn_torn_reads.rs`'s whole-epochs-only invariant.
//!
//! A changelog is built from a workload where every committed epoch
//! inserts exactly `OPS` values into *each* of two columns. The segment
//! file is then damaged — truncated at **every byte boundary**
//! (exhaustively), and bit-flipped at arbitrary positions (proptest) —
//! and reopened. The contract under test, for every damage pattern:
//!
//! * `DurableStore::open` either recovers to a clean **prefix of
//!   published epochs** or returns a typed error — it never panics;
//! * a recovered store never serves partial-epoch state: each
//!   registered column's mass is exactly `OPS * epoch` (epoch `k`
//!   contributed its full `OPS` inserts or nothing), both columns agree,
//!   and per-column accepted counts equal the epoch.
//!
//! Truncation inside the header region (a crash during log creation)
//! recovers to the empty store; truncation before a column's register
//! record recovers to a store that does not know the column yet — both
//! are valid prefixes of the history.

use dynamic_histograms::catalog::CatalogError;
use dynamic_histograms::prelude::*;
use proptest::prelude::*;
use std::fs;
use std::path::Path;

const OPS: u64 = 8;
const EPOCHS: u64 = 12;

fn opts() -> DurableOptions {
    DurableOptions {
        sync: SyncPolicy::Off,
        checkpoint_every: None,
        retain_generations: 2,
    }
}

fn config() -> ColumnConfig {
    ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(0.5)).with_seed(3)
}

/// Builds the reference changelog and returns the single segment file's
/// bytes.
fn reference_log(dir: &Path) -> Vec<u8> {
    {
        let store = DurableStore::open(dir, StoreKind::Single, opts()).unwrap();
        store.register("a", config()).unwrap();
        store.register("b", config()).unwrap();
        for e in 0..EPOCHS {
            let mut batch = WriteBatch::new();
            for i in 0..OPS as i64 {
                let v = (e as i64 * 37 + i * 13) % 200;
                batch.insert("a", v).insert("b", v);
            }
            store.commit(batch).unwrap();
        }
        assert_eq!(store.epoch(), EPOCHS);
    }
    let seg = dir.join(format!("wal-{:020}.seg", 0));
    fs::read(seg).unwrap()
}

/// Opens a store over `bytes` as its only segment and asserts the
/// whole-epochs contract; returns the recovered epoch (`None` for a
/// typed error).
fn open_and_check(bytes: &[u8], label: &str) -> Option<u64> {
    let dir = TempDir::new(label);
    fs::write(dir.path().join(format!("wal-{:020}.seg", 0)), bytes).unwrap();
    match DurableStore::open(dir.path(), StoreKind::Single, opts()) {
        Ok(store) => {
            let epoch = store.epoch();
            assert!(epoch <= EPOCHS, "recovered beyond the written history");
            for col in store.columns() {
                let col = col.as_str();
                // Whole epochs only: full batches or nothing, never a
                // torn one — and the counters agree with the mass.
                assert_eq!(
                    store.total_count(col).unwrap(),
                    (OPS * epoch) as f64,
                    "partial-epoch mass on '{col}' at epoch {epoch}"
                );
                assert_eq!(store.checkpoint(col).unwrap(), epoch);
            }
            // Both columns were committed in lockstep: if both exist
            // they must serve identical mass (a one-sided epoch would
            // break commit atomicity).
            if store.contains("a") && store.contains("b") {
                assert_eq!(
                    store.total_count("a").unwrap(),
                    store.total_count("b").unwrap()
                );
            } else if epoch > 0 {
                panic!("epochs recovered without both register records");
            }
            Some(epoch)
        }
        Err(DurableError::Wal(_)) | Err(DurableError::Recovery(_)) => None,
        Err(other) => panic!("unexpected error class: {other}"),
    }
}

/// Exhaustive: every truncation point either recovers a clean epoch
/// prefix or errors — and longer prefixes never recover fewer epochs.
#[test]
fn every_truncation_boundary_recovers_a_prefix_or_errors() {
    let full = TempDir::new("torn-ref");
    let bytes = reference_log(full.path());
    let mut last_epoch = 0;
    for cut in 0..=bytes.len() {
        if let Some(epoch) = open_and_check(&bytes[..cut], "torn-cut") {
            assert!(
                epoch >= last_epoch,
                "cut {cut}: recovered {epoch} epochs, shorter cut had {last_epoch}"
            );
            last_epoch = epoch;
        }
    }
    assert_eq!(last_epoch, EPOCHS, "the untruncated log must replay fully");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random bit flips anywhere in the file (header included): the
    /// checksum window turns tail damage into a truncated tail,
    /// mid-file damage (valid frames still follow) and header damage
    /// into typed errors — never a panic, never a torn epoch.
    #[test]
    fn random_bit_flips_never_tear_an_epoch(
        flips in prop::collection::vec((0usize..4096, 0u8..8), 1..4)
    ) {
        let full = TempDir::new("flip-ref");
        let mut bytes = reference_log(full.path());
        for (pos, bit) in flips {
            let pos = pos % bytes.len();
            bytes[pos] ^= 1 << bit;
        }
        open_and_check(&bytes, "torn-flip");
    }

    /// Flip + truncate combined: damage followed by a crash.
    #[test]
    fn flip_then_truncate_never_tears_an_epoch(
        pos in 0usize..4096,
        bit in 0u8..8,
        keep in 0usize..4096,
    ) {
        let full = TempDir::new("fliptrunc-ref");
        let mut bytes = reference_log(full.path());
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        bytes.truncate(keep % (bytes.len() + 1));
        open_and_check(&bytes, "torn-fliptrunc");
    }
}

/// Damage in a *sealed* segment must surface as a typed corruption
/// error — the torn-tail allowance is for the last segment only. (The
/// live store only keeps a sealed segment between `rotate` and
/// `remove_covered`, so the two-segment directory is crafted by
/// splitting the reference log at a frame boundary.)
#[test]
fn sealed_segment_damage_is_a_typed_error_not_a_truncation() {
    const HEADER: usize = 9;
    let full = TempDir::new("sealed-ref");
    let bytes = reference_log(full.path());

    // Walk the frame boundaries: [u32 len][u32 crc][payload].
    let mut boundaries = vec![HEADER];
    let mut at = HEADER;
    while at < bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        at += 8 + len;
        boundaries.push(at);
    }
    let split = boundaries[boundaries.len() / 2];

    let dir = TempDir::new("torn-sealed");
    // First segment: the leading frames, with a torn tail (the same
    // 3-byte truncation the last-segment tests recover from).
    let mut first = bytes[..split].to_vec();
    first.truncate(first.len() - 3);
    fs::write(dir.path().join(format!("wal-{:020}.seg", 0)), &first).unwrap();
    // Second segment: a fresh header plus the remaining frames — its
    // presence seals the first.
    let mut second = bytes[..HEADER].to_vec();
    second.extend_from_slice(&bytes[split..]);
    fs::write(dir.path().join(format!("wal-{:020}.seg", 7)), &second).unwrap();

    match DurableStore::open(dir.path(), StoreKind::Single, opts()) {
        Err(DurableError::Wal(WalError::Corrupt { .. })) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

/// The error types on the trait surface: a durability failure arriving
/// through `ColumnStore` renders as `CatalogError::Durability`.
#[test]
fn durability_errors_have_display_and_trait_mapping() {
    let err = CatalogError::Durability("disk on fire".into());
    assert!(err.to_string().contains("disk on fire"));
    assert!(CatalogError::EpochEvicted(42).to_string().contains("42"));
}
