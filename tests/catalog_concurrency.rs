//! Catalog concurrency smoke test: a writer thread ingests batches while
//! reader threads estimate ranges off snapshots — no panics, monotone
//! checkpoint counts, sane estimates throughout.
//!
//! This is the paper's deployment story made literal: the histogram is
//! maintained in place *while* the optimizer keeps reading it.

use dynamic_histograms::core::{ReadHistogram, UpdateOp};
use dynamic_histograms::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

const BATCHES: usize = 60;
const BATCH_SIZE: i64 = 200;

fn batch(b: i64, column_salt: i64) -> Vec<UpdateOp> {
    (0..BATCH_SIZE)
        .map(|i| {
            let v = ((b * BATCH_SIZE + i) * (13 + column_salt)) % 500;
            if i % 9 == 8 && b > 0 {
                // Delete something inserted by an earlier batch.
                UpdateOp::Delete(((b - 1) * BATCH_SIZE * (13 + column_salt)) % 500)
            } else {
                UpdateOp::Insert(v)
            }
        })
        .collect()
}

#[test]
fn writer_and_readers_share_the_catalog() {
    let catalog = Catalog::new();
    let memory = MemoryBudget::from_kb(1.0);
    catalog
        .register("dc", ColumnConfig::new(AlgoSpec::Dc, memory).with_seed(11))
        .unwrap();
    catalog
        .register(
            "dado",
            ColumnConfig::new(AlgoSpec::Dado, memory).with_seed(11),
        )
        .unwrap();
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Writer: one batch per column per round.
        scope.spawn(|| {
            for b in 0..BATCHES as i64 {
                let cp = catalog.apply("dc", &batch(b, 0)).unwrap();
                assert_eq!(cp, (b + 1) as u64, "writer sees its own batch count");
                catalog.apply("dado", &batch(b, 4)).unwrap();
            }
            done.store(true, Ordering::Release);
        });

        // Readers: estimate continuously until the writer finishes, and
        // assert checkpoints never move backwards.
        for _ in 0..3 {
            scope.spawn(|| {
                let mut last_cp = [0u64; 2];
                let mut reads = 0u64;
                while !done.load(Ordering::Acquire) || reads == 0 {
                    for (ci, col) in ["dc", "dado"].iter().enumerate() {
                        let snap = catalog.snapshot(col).unwrap();
                        assert!(
                            snap.checkpoint() >= last_cp[ci],
                            "{col}: checkpoint moved backwards: {} -> {}",
                            last_cp[ci],
                            snap.checkpoint()
                        );
                        last_cp[ci] = snap.checkpoint();
                        let est = snap.estimate_range(0, 499);
                        assert!(est.is_finite() && est >= 0.0, "{col}: bad estimate {est}");
                        assert!(
                            (est - snap.total_count()).abs() <= snap.total_count() * 0.05 + 1.0,
                            "{col}: full-domain estimate {est} far from total {}",
                            snap.total_count()
                        );
                    }
                    reads += 1;
                }
                assert!(reads > 0);
            });
        }
    });

    // Final state: every batch accounted for, snapshots at the last
    // checkpoint.
    for col in ["dc", "dado"] {
        assert_eq!(catalog.checkpoint(col).unwrap(), BATCHES as u64);
        let snap = catalog.snapshot(col).unwrap();
        assert_eq!(snap.checkpoint(), BATCHES as u64);
        assert!(snap.total_count() > 0.0);
    }
}

#[test]
fn columns_do_not_interfere() {
    let catalog = Catalog::new();
    let memory = MemoryBudget::from_kb(0.5);
    catalog
        .register("a", ColumnConfig::new(AlgoSpec::Dc, memory).with_seed(1))
        .unwrap();
    catalog
        .register(
            "b",
            ColumnConfig::new(AlgoSpec::EquiDepth, memory).with_seed(1),
        )
        .unwrap();

    std::thread::scope(|scope| {
        scope.spawn(|| {
            for b in 0..30i64 {
                catalog.apply("a", &batch(b, 0)).unwrap();
            }
        });
        scope.spawn(|| {
            for b in 0..10i64 {
                catalog.apply("b", &batch(b, 2)).unwrap();
            }
        });
    });

    assert_eq!(catalog.checkpoint("a").unwrap(), 30);
    assert_eq!(catalog.checkpoint("b").unwrap(), 10);
}
