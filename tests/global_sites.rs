//! The multi-site global catalog, end-to-end (Section 8 as a
//! deployment): a 3-site composition — one in-process member, two
//! socket-remote members behind `SiteServer`s — serving
//! epoch-consistent estimates through the read-only `ColumnStore`
//! surface, across all three store designs backing the local member.
//!
//! The fault scenario is the subsystem's reason to exist: kill one
//! remote mid-workload and the next read *degrades* (remaining-site
//! superposition, correct per-site `SiteStatus`, no error); restart
//! the site from its own changelog and the composition heals with
//! bit-identical spans; rebuild the site from scratch and the version
//! vector holds it out as `Stale` until site-to-site `catch_up`
//! replays its epochs — bit-identically — from a peer's changelog.
//!
//! The KS-parity property pins the paper's Figs. 20–23 claim one layer
//! up: a `GlobalCatalog` over k healthy sites lands in the same
//! quality band as one pooled catalog over the union of the data.

use dynamic_histograms::core::{ks_error, DataDistribution};
use dynamic_histograms::prelude::*;
use dynamic_histograms::site::{catch_up, SiteError};
use proptest::prelude::*;
use std::net::SocketAddr;
use std::sync::Arc;

const COLUMN: &str = "c";
const DOMAIN: (i64, i64) = (0, 200);

/// The three store designs the serving benches compare, built here
/// directly so the local member exercises each of them.
fn local_store(design: &str, seed: u64) -> Box<dyn ColumnStore> {
    let mut plan = ShardPlan::new(DOMAIN.0, DOMAIN.1, 4).unwrap();
    if design == "sharded-channels" {
        plan = plan.channel();
    }
    let store: Box<dyn ColumnStore> = match design {
        "single-RwLock" => Box::new(Catalog::new()),
        _ => Box::new(ShardedCatalog::new()),
    };
    let config = ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0))
        .with_seed(seed)
        .with_plan(plan);
    store.register(COLUMN, config).unwrap();
    store
}

fn durable_options() -> DurableOptions {
    DurableOptions {
        sync: SyncPolicy::Off,
        ..DurableOptions::default()
    }
}

/// One member's slice of the workload: a deterministic per-site stream.
fn site_values(site: u64, n: u64) -> impl Iterator<Item = i64> {
    (0..n).map(move |i| ((site * 37 + i * 13) % (DOMAIN.1 as u64 - 1)) as i64)
}

fn commit_values(site: &dyn dynamic_histograms::site::Site, values: impl Iterator<Item = i64>) {
    let mut batch = WriteBatch::new();
    for v in values {
        batch.insert(COLUMN, v);
    }
    site.commit(batch).unwrap();
}

/// Bit-exact span fingerprint (`f64::to_bits`, not float equality).
fn bits(spans: &[dynamic_histograms::core::BucketSpan]) -> Vec<(u64, u64, u64)> {
    spans
        .iter()
        .map(|s| (s.lo.to_bits(), s.hi.to_bits(), s.count.to_bits()))
        .collect()
}

/// Spawns a remote member: a `DurableStore` in `dir` behind a
/// `SiteServer`, registered and fed *over the wire* (the register
/// request travels as the exact WAL record its replay logs).
fn spawn_remote(
    dir: &TempDir,
    name: &str,
    values: impl Iterator<Item = i64>,
) -> (SiteServer, RemoteSite) {
    let store =
        Arc::new(DurableStore::open(dir.path(), StoreKind::Single, durable_options()).unwrap());
    let server = SiteServer::spawn(store).unwrap();
    let site = RemoteSite::new(name, server.addr());
    site.register(
        COLUMN,
        ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0)).with_seed(7),
    )
    .unwrap();
    commit_values(&site, values);
    (server, site)
}

#[test]
fn three_sites_serve_degrade_and_catch_up_across_all_designs() {
    for design in ["single-RwLock", "sharded-locks", "sharded-channels"] {
        // --- Build: one local member plus two socket-remote members.
        let local = local_store(design, 42);
        let site0 = Arc::new(LocalSite::new("local", local));
        commit_values(site0.as_ref(), site_values(0, 400));

        let dir1 = TempDir::new("global_sites_r1");
        let dir2 = TempDir::new("global_sites_r2");
        // `_server1` stays in scope: dropping it would kill site r1.
        let (_server1, site1) = spawn_remote(&dir1, "r1", site_values(1, 300));
        let (mut server2, site2) = spawn_remote(&dir2, "r2", site_values(2, 200));
        let addr2: SocketAddr = server2.addr();

        let global = GlobalCatalog::new(vec![
            site0.clone(),
            Arc::new(site1.clone()),
            Arc::new(site2.clone()),
        ]);

        // --- Healthy: epoch-consistent estimates over all three.
        let healthy = global.snapshot(COLUMN).unwrap();
        assert_eq!(healthy.epoch(), 3, "{design}: one commit per site");
        let total = global.total_count(COLUMN).unwrap();
        assert!((total - 900.0).abs() < 1e-6, "{design}: total {total}");
        assert!(
            global
                .site_statuses()
                .iter()
                .all(|(_, s)| matches!(s, SiteStatus::Healthy { .. })),
            "{design}: {:?}",
            global.site_statuses()
        );
        let spans2_before = site2.snapshot_spans(COLUMN, None).unwrap();

        // --- Kill r2: the next read degrades instead of failing.
        server2.stop();
        drop(server2);
        let degraded = global.snapshot(COLUMN).unwrap();
        let degraded_total = global.total_count(COLUMN).unwrap();
        assert!(
            (degraded_total - 700.0).abs() < 1e-6,
            "{design}: remaining-site superposition, got {degraded_total}"
        );
        assert!(degraded.epoch() >= healthy.epoch(), "epoch stays monotone");
        let statuses = global.site_statuses();
        assert!(
            statuses
                .iter()
                .any(|(n, s)| n == "r2" && *s == SiteStatus::Unreachable),
            "{design}: {statuses:?}"
        );
        let stats = global.read_stats();
        assert!(stats.degraded_reads >= 1, "{design}: {stats:?}");
        assert!(stats.site_failures >= 1, "{design}: {stats:?}");

        // --- Restart r2 from its own changelog, on the same address:
        // the very next read heals, bit-identically.
        let store2b = Arc::new(
            DurableStore::open(dir2.path(), StoreKind::Single, durable_options()).unwrap(),
        );
        let mut server2b = SiteServer::spawn_on(Arc::clone(&store2b), addr2).unwrap();
        let spans2_after = site2.snapshot_spans(COLUMN, None).unwrap();
        assert_eq!(spans2_after.epoch, spans2_before.epoch);
        assert_eq!(
            bits(&spans2_after.spans),
            bits(&spans2_before.spans),
            "{design}: restart must replay to bit-identical spans"
        );
        let healed = global.snapshot(COLUMN).unwrap();
        assert_eq!(
            bits(healed.spans().as_slice()),
            bits(healthy.spans().as_slice())
        );
        assert!(
            global
                .site_statuses()
                .iter()
                .all(|(_, s)| matches!(s, SiteStatus::Healthy { .. })),
            "{design}: {:?}",
            global.site_statuses()
        );

        // --- Rebuild r2 from scratch (empty store, same address): the
        // version vector holds it out as Stale until it catches up.
        server2b.stop();
        drop(server2b);
        let dir2c = TempDir::new("global_sites_r2_rebuilt");
        let store2c = Arc::new(
            DurableStore::open(dir2c.path(), StoreKind::Single, durable_options()).unwrap(),
        );
        let _server2c = SiteServer::spawn_on(Arc::clone(&store2c), addr2).unwrap();
        let stale_read = global.snapshot(COLUMN).unwrap();
        let stale_total = global.total_count(COLUMN).unwrap();
        assert!(
            (stale_total - 700.0).abs() < 1e-6,
            "{design}: {stale_total}"
        );
        assert!(stale_read.epoch() >= healed.epoch());
        assert!(
            global.site_statuses().iter().any(|(n, s)| n == "r2"
                && matches!(
                    s,
                    SiteStatus::Stale {
                        epoch: 0,
                        behind: 1
                    }
                )),
            "{design}: {:?}",
            global.site_statuses()
        );

        // --- Site-to-site catch-up: replay the lost epochs from a peer
        // that still has the changelog (the pre-rebuild store, served
        // on a fresh port). Bit-identical, and the composition heals.
        let server_peer = SiteServer::spawn(Arc::clone(&store2b)).unwrap();
        let peer = RemoteSite::new("r2-peer", server_peer.addr());
        let report = catch_up(store2c.as_ref(), &peer, store2c.epoch()).unwrap();
        assert!(report.caught_up, "{design}: {report:?}");
        assert_eq!(report.epoch, spans2_before.epoch);
        let spans2_rebuilt = site2.snapshot_spans(COLUMN, None).unwrap();
        assert_eq!(
            bits(&spans2_rebuilt.spans),
            bits(&spans2_before.spans),
            "{design}: catch-up must replay to bit-identical spans"
        );
        let final_read = global.snapshot(COLUMN).unwrap();
        assert_eq!(
            bits(final_read.spans().as_slice()),
            bits(healthy.spans().as_slice())
        );
        let final_total = global.total_count(COLUMN).unwrap();
        assert!(
            (final_total - 900.0).abs() < 1e-6,
            "{design}: {final_total}"
        );
        assert!(
            global
                .site_statuses()
                .iter()
                .all(|(_, s)| matches!(s, SiteStatus::Healthy { .. })),
            "{design}: {:?}",
            global.site_statuses()
        );
    }
}

#[test]
fn global_catalog_is_read_only_and_reports_union_metadata() {
    let a = local_store("single-RwLock", 1);
    let b = local_store("single-RwLock", 2);
    let site_a = Arc::new(LocalSite::new("a", a));
    let site_b = Arc::new(LocalSite::new("b", b));
    commit_values(site_a.as_ref(), site_values(0, 100));
    commit_values(site_b.as_ref(), site_values(1, 100));
    // A column only one site hosts still resolves globally.
    site_b
        .store()
        .register(
            "only-b",
            ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0)),
        )
        .unwrap();
    let global = GlobalCatalog::new(vec![site_a, site_b]);
    assert_eq!(
        global.columns(),
        vec![COLUMN.to_string(), "only-b".to_string()]
    );
    assert!(global.contains("only-b"));
    assert_eq!(global.spec(COLUMN).unwrap(), AlgoSpec::Dc);
    assert!(global.snapshot("only-b").unwrap().spans().is_empty());
    assert!(matches!(
        global.snapshot("ghost"),
        Err(CatalogError::UnknownColumn(_))
    ));
    assert!(matches!(
        global.register(
            "new",
            ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0))
        ),
        Err(CatalogError::ReadOnlyReplica)
    ));
    let mut batch = WriteBatch::new();
    batch.insert(COLUMN, 1);
    assert!(matches!(
        global.commit(batch),
        Err(CatalogError::ReadOnlyReplica)
    ));
}

#[test]
fn all_sites_down_is_an_error_not_a_panic() {
    // Bind-and-drop: an address nothing listens on.
    let addr = {
        let l = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        l.local_addr().unwrap()
    };
    let global = GlobalCatalog::new(vec![Arc::new(RemoteSite::new("gone", addr))]);
    assert!(matches!(
        global.snapshot(COLUMN),
        Err(CatalogError::Durability(_))
    ));
    let stats = global.read_stats();
    assert!(stats.site_failures >= 1 && stats.degraded_reads >= 1);
    // The remote's own surface reports Unreachable, not a panic.
    let site = RemoteSite::new("gone", addr);
    assert!(matches!(
        site.snapshot_spans(COLUMN, None),
        Err(SiteError::Unreachable(_))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Figs. 20–23, end-to-end: a `GlobalCatalog` over k healthy local
    /// sites lands in the same KS band as one pooled `ShardedCatalog`
    /// over the union of the data.
    #[test]
    fn global_over_k_sites_matches_pooled_quality(
        k in 2usize..5,
        values in prop::collection::vec(0i64..199, 400..1200),
        seed in 0u64..1000,
    ) {
        // Partition the stream round-robin across k member sites.
        let mut sites: Vec<Arc<dyn dynamic_histograms::site::Site>> = Vec::new();
        for s in 0..k {
            let store = local_store("single-RwLock", seed);
            let site = Arc::new(LocalSite::new(format!("s{s}"), store));
            commit_values(site.as_ref(), values.iter().skip(s).step_by(k).copied());
            sites.push(site);
        }
        let global = GlobalCatalog::new(sites);
        let g_snap = global.snapshot(COLUMN).unwrap();

        // The pooled reference: one sharded catalog over the union.
        let pooled = local_store("sharded-locks", seed);
        let mut batch = WriteBatch::new();
        for &v in &values {
            batch.insert(COLUMN, v);
        }
        pooled.commit(batch).unwrap();
        let p_snap = pooled.snapshot(COLUMN).unwrap();

        let truth = DataDistribution::from_values(&values);
        let g_ks = ks_error(&g_snap, &truth);
        let p_ks = ks_error(&p_snap, &truth);
        // Same quality band: superposition may not beat the pooled
        // histogram, but it must not fall out of its band (the paper's
        // global-vs-local gap is a few percent of KS error).
        prop_assert!(g_ks <= p_ks + 0.1, "global {g_ks} vs pooled {p_ks}");
        prop_assert!(g_ks < 0.25, "global quality collapsed: {g_ks}");
        // Mass is conserved exactly by superposition.
        let g_total = global.total_count(COLUMN).unwrap();
        prop_assert!((g_total - values.len() as f64).abs() < 1e-6);
    }
}
