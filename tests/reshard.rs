//! Dynamic re-sharding: the live `ShardMap` keeps the documented
//! routing invariants across border rebuilds, re-sharding preserves
//! mass exactly, and — the point of the feature — re-balanced borders
//! measurably improve the max/mean shard-load balance on a Zipf-skewed
//! `dh_gen` replay versus the frozen registration-time plan.
//!
//! (Whole-epoch consistency *during* a re-shard is raced separately in
//! `tests/txn_torn_reads.rs`.)

use dynamic_histograms::core::{BucketSpan, ReadHistogram, UpdateOp};
use dynamic_histograms::prelude::*;
use proptest::prelude::*;

/// Max/mean routed-load ratio (1 = perfectly balanced).
fn balance(loads: &[u64]) -> f64 {
    let total: u64 = loads.iter().sum();
    if loads.is_empty() || total == 0 {
        return 1.0;
    }
    *loads.iter().max().unwrap() as f64 / (total as f64 / loads.len() as f64)
}

/// Asserts the documented `route`/`shard_range` invariants: the ranges
/// tile the domain in order (empty shards inverted, `b == a - 1`), and
/// routing is the exact inverse on every non-empty range, total on
/// `i64` via edge clamping.
fn check_map(map: &ShardMap, domain: (i64, i64), shards: usize) {
    let (lo, hi) = domain;
    assert_eq!(map.domain(), domain);
    assert_eq!(map.shards(), shards);
    assert_eq!(map.starts()[0], lo);
    let mut next = lo as i128;
    for i in 0..shards {
        let (a, b) = map.shard_range(i);
        assert_eq!(
            a as i128,
            next,
            "shard {i} must start where {} ended",
            i.wrapping_sub(1)
        );
        assert!(
            b as i128 >= a as i128 - 1,
            "shard {i} range worse than empty"
        );
        next = b as i128 + 1;
        if b < a {
            continue; // empty shard owns no value
        }
        let mid = ((a as i128 + b as i128) / 2) as i64;
        for v in [a, b, mid] {
            assert_eq!(map.route(v), i, "route({v}) must hit shard {i} [{a},{b}]");
        }
    }
    assert_eq!(next, hi as i128 + 1, "ranges must tile the whole domain");
    // Total on i64: out-of-domain values clamp to the edge shards.
    assert_eq!(map.route(i64::MIN), map.route(lo));
    assert_eq!(map.route(i64::MAX), map.route(hi));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Equal-width and balanced maps keep the invariants on any domain —
    /// including the full `i64` domain and domains pinned to either
    /// extreme — for any mass layout.
    #[test]
    fn maps_tile_any_domain(
        shape in (any::<u8>(), any::<u64>(), 0i64..5000, 1usize..12),
        masses in prop::collection::vec((any::<u64>(), 1u64..40), 0..30),
    ) {
        let (kind, lo_raw, span, shards) = shape;
        let domain = match kind % 4 {
            0 => (i64::MIN, i64::MAX),
            1 => (i64::MIN, i64::MIN + span),
            2 => (i64::MAX - span, i64::MAX),
            _ => {
                let lo = (lo_raw % 100_000) as i64 - 50_000;
                (lo, lo + span)
            }
        };
        let width = (domain.1 as i128 - domain.0 as i128) as u128 + 1;
        let spans: Vec<BucketSpan> = masses
            .iter()
            .map(|&(off, mass)| {
                let v = (domain.0 as i128 + (off as u128 % width) as i128) as f64;
                // Near the i64 extremes `v + 1.0` may round back onto
                // `v`; zero-width spans are legal and must not break
                // the cut computation.
                BucketSpan::new(v, (v + 1.0).max(v), mass as f64)
            })
            .collect();
        check_map(&ShardMap::equal_width(domain, shards).unwrap(), domain, shards);
        check_map(&ShardMap::balanced(&spans, domain, shards).unwrap(), domain, shards);
    }

    /// On a live store, `route`/`shard_range` stay exact inverses across
    /// repeated re-shards under drifting mass, and every re-shard
    /// conserves total mass exactly.
    #[test]
    fn live_store_invariants_hold_across_reshards(
        values in prop::collection::vec(0i64..400, 50..250),
        shards in 2usize..9,
        seed in any::<u64>(),
    ) {
        let cat = ShardedCatalog::new();
        let plan = ShardPlan::new(0, 399, shards).unwrap();
        cat.register(
            "c",
            ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(0.5))
                .with_seed(seed)
                .with_plan(plan),
        )
        .unwrap();
        for phase in 0..3i64 {
            let batch: Vec<UpdateOp> = values
                .iter()
                .map(|&v| UpdateOp::Insert((v + phase * 130) % 400))
                .collect();
            cat.apply("c", &batch).unwrap();
            cat.reshard("c").unwrap();
            check_map(&cat.shard_map("c").unwrap(), (0, 399), shards);
            let expected = (values.len() as i64 * (phase + 1)) as f64;
            let total = cat.total_count("c").unwrap();
            prop_assert!(
                (total - expected).abs() < 1e-6,
                "phase {phase}: mass {total} != {expected} after re-shard"
            );
        }
    }
}

#[test]
fn more_shards_than_values_keeps_empty_ranges_inverse() {
    // 3 domain values, 8 shards: 5 shards must come back empty
    // (inverted), and routing must skip them exactly.
    let domain = (10i64, 12i64);
    let map = ShardMap::equal_width(domain, 8).unwrap();
    check_map(&map, domain, 8);
    let empties = (0..8)
        .filter(|&i| {
            let (a, b) = map.shard_range(i);
            b < a
        })
        .count();
    assert_eq!(empties, 5);
    // Balanced cuts fall back to the same equal-width tiling (there is
    // nothing to balance), so a re-shard is a no-op.
    let spans = vec![BucketSpan::new(10.0, 13.0, 500.0)];
    assert_eq!(ShardMap::balanced(&spans, domain, 8).unwrap(), map);

    let cat = ShardedCatalog::new();
    let plan = ShardPlan::new(10, 12, 8).unwrap();
    cat.register(
        "tiny",
        ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(0.25)).with_plan(plan),
    )
    .unwrap();
    let ops: Vec<UpdateOp> = (0..300).map(|i| UpdateOp::Insert(10 + i % 3)).collect();
    cat.apply("tiny", &ops).unwrap();
    assert!(!cat.reshard("tiny").unwrap(), "nothing to move");
    check_map(&cat.shard_map("tiny").unwrap(), domain, 8);
    assert!((cat.total_count("tiny").unwrap() - 300.0).abs() < 1e-9);
}

/// The acceptance criterion: on a Zipf-skewed `dh_gen` replay, borders
/// rebuilt from the observed distribution route the rest of the stream
/// measurably more evenly than the frozen equal-width plan.
#[test]
fn reshard_improves_balance_on_zipf_skewed_replay() {
    let gen = SyntheticConfig::default()
        .with_domain(0, 999)
        .with_total_points(20_000)
        .with_size_skew(2.5)
        .with_spread_skew(2.5);
    let data = gen.generate(42);
    let ops = UpdateStream::build(&data.values, WorkloadKind::RandomInsertions, 7).ops();
    let (first, second) = ops.split_at(ops.len() / 2);

    let plan = ShardPlan::new(0, 999, 8).unwrap();
    let config = ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0))
        .with_seed(3)
        .with_plan(plan);
    let build = || {
        let cat = ShardedCatalog::new();
        cat.register("c", config).unwrap();
        cat
    };
    let frozen = build();
    let adaptive = build();
    for chunk in first.chunks(256) {
        frozen.apply("c", chunk).unwrap();
        adaptive.apply("c", chunk).unwrap();
    }
    assert!(adaptive.reshard("c").unwrap(), "skewed borders must move");
    // Fresh counters on the adaptive store measure exactly the
    // post-re-shard routing; the frozen store's second-half routing is
    // the delta over the same tail.
    assert!(adaptive.shard_load("c").unwrap().iter().all(|&l| l == 0));
    let frozen_before = frozen.shard_load("c").unwrap();
    for chunk in second.chunks(256) {
        frozen.apply("c", chunk).unwrap();
        adaptive.apply("c", chunk).unwrap();
    }
    let frozen_tail: Vec<u64> = frozen
        .shard_load("c")
        .unwrap()
        .iter()
        .zip(&frozen_before)
        .map(|(after, before)| after - before)
        .collect();
    let frozen_balance = balance(&frozen_tail);
    let adaptive_balance = balance(&adaptive.shard_load("c").unwrap());
    assert!(
        adaptive_balance < 0.75 * frozen_balance,
        "re-balanced borders must beat the frozen plan: \
         adaptive max/mean {adaptive_balance:.3} vs frozen {frozen_balance:.3}"
    );

    // Both stores account for every op exactly, re-shard or not.
    let expected = ops.len() as f64;
    assert!((frozen.total_count("c").unwrap() - expected).abs() < 1e-6);
    assert!((adaptive.total_count("c").unwrap() - expected).abs() < 1e-6);
    // And the adaptive store still estimates the same distribution:
    // full-range and quartile reads stay near the frozen ones.
    let fs = frozen.snapshot("c").unwrap();
    let as_ = adaptive.snapshot("c").unwrap();
    for (a, b) in [(0, 999), (0, 249), (250, 499), (500, 749), (750, 999)] {
        let fe = fs.estimate_range(a, b);
        let ae = as_.estimate_range(a, b);
        assert!(
            (fe - ae).abs() <= 0.05 * expected + 50.0,
            "[{a},{b}]: frozen {fe} vs adaptive {ae}"
        );
    }
}

#[test]
fn policy_fires_automatically_and_rebalances() {
    let policy = ReshardPolicy {
        skew_threshold: 1.5,
        min_interval_epochs: 4,
        min_load: 512,
    };
    let cat = ShardedCatalog::new();
    let plan = ShardPlan::new(0, 999, 8).unwrap();
    cat.register(
        "c",
        ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0))
            .with_seed(9)
            .with_plan(plan)
            .with_reshard(policy),
    )
    .unwrap();
    // Every value lands in the first equal-width shard: maximal skew.
    let mut total = 0u64;
    for b in 0..12i64 {
        let batch: Vec<UpdateOp> = (0..256)
            .map(|i| UpdateOp::Insert((b * 7 + i) % 100))
            .collect();
        total += batch.len() as u64;
        cat.apply("c", &batch).unwrap();
    }
    assert!(
        cat.reshard_count("c").unwrap() >= 1,
        "policy must have fired on an 8x-skewed load"
    );
    assert!((cat.total_count("c").unwrap() - total as f64).abs() < 1e-6);
    // The hot range [0, 99] is now split across many shards: replaying
    // the same stream shape routes far below the all-on-one-shard peak.
    let before = cat.shard_load("c").unwrap();
    let batch: Vec<UpdateOp> = (0..1024).map(|i| UpdateOp::Insert(i % 100)).collect();
    cat.apply("c", &batch).unwrap();
    let delta: Vec<u64> = cat
        .shard_load("c")
        .unwrap()
        .iter()
        .zip(&before)
        .map(|(a, b)| a.saturating_sub(*b))
        .collect();
    assert!(
        *delta.iter().max().unwrap() < 1024,
        "hot range must no longer map to a single shard: {delta:?}"
    );
    // A single-shard column has no borders to move.
    cat.register(
        "one",
        ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(0.25))
            .with_plan(ShardPlan::new(0, 9, 1).unwrap())
            .with_reshard(ReshardPolicy::default()),
    )
    .unwrap();
    cat.apply("one", &[UpdateOp::Insert(1)]).unwrap();
    assert!(!cat.reshard("one").unwrap());
}

#[test]
fn unsharded_store_defaults_for_reshard_surface() {
    // The trait has defaults for stores that do not partition: no
    // borders to move, no per-shard loads, no clamping.
    let cat = Catalog::new();
    cat.register(
        "c",
        ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(0.5)),
    )
    .unwrap();
    cat.apply("c", &[UpdateOp::Insert(5), UpdateOp::Insert(1_000_000)])
        .unwrap();
    assert!(!cat.reshard("c").unwrap());
    assert!(cat.shard_load("c").unwrap().is_empty());
    assert_eq!(cat.clamped_ops("c").unwrap(), 0);
    assert!(cat.reshard("ghost").is_err());
    assert!(cat.shard_load("ghost").is_err());
    assert!(cat.clamped_ops("ghost").is_err());
}
