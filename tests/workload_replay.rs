//! Integration test: every update pattern of Section 7 replayed through
//! every dynamic histogram, checking structural invariants.

use dynamic_histograms::core::{
    ks_error, DataDistribution, Histogram, HistogramClass, MemoryBudget, ReadHistogram,
};
use dynamic_histograms::prelude::*;

fn workloads() -> Vec<(&'static str, WorkloadKind)> {
    vec![
        ("random inserts", WorkloadKind::RandomInsertions),
        ("sorted inserts", WorkloadKind::SortedInsertions),
        (
            "mixed inserts/deletes",
            WorkloadKind::InsertionsWithRandomDeletions {
                delete_probability: 0.25,
            },
        ),
        (
            "inserts then deletes",
            WorkloadKind::InsertionsThenRandomDeletions {
                delete_fraction: 0.5,
            },
        ),
        (
            "sorted inserts then sorted deletes",
            WorkloadKind::SortedInsertionsThenSortedDeletions {
                delete_fraction: 0.5,
            },
        ),
    ]
}

fn replay<H: Histogram>(h: &mut H, stream: &UpdateStream) -> DataDistribution {
    let mut truth = DataDistribution::new();
    for u in stream.iter() {
        match u {
            Update::Insert(v) => {
                h.insert(v);
                truth.insert(v);
            }
            Update::Delete(v) => {
                h.delete(v);
                truth.delete(v);
            }
        }
    }
    truth
}

fn check_invariants(name: &str, wl: &str, h: &impl ReadHistogram, truth: &DataDistribution) {
    // 1. Mass conservation.
    assert!(
        (h.total_count() - truth.total() as f64).abs() < 1e-6,
        "{name} on '{wl}': mass drift {} vs {}",
        h.total_count(),
        truth.total()
    );
    // 2. Spans sorted, non-overlapping, nonnegative.
    let spans = h.spans();
    for w in spans.windows(2) {
        assert!(
            w[0].hi <= w[1].lo + 1e-9,
            "{name} on '{wl}': overlapping spans {w:?}"
        );
    }
    assert!(
        spans.iter().all(|s| s.count >= -1e-9 && s.lo <= s.hi),
        "{name} on '{wl}': malformed span"
    );
    // 3. KS is a valid statistic and not catastrophic.
    let ks = ks_error(h, truth);
    assert!(
        (0.0..=1.0).contains(&ks),
        "{name} on '{wl}': KS out of range {ks}"
    );
    assert!(ks < 0.30, "{name} on '{wl}': KS implausibly bad: {ks}");
}

#[test]
fn all_dynamic_histograms_survive_all_workloads() {
    let cfg = SyntheticConfig::default().with_total_points(10_000);
    let memory = MemoryBudget::from_kb(1.0);
    let n1 = memory.buckets(HistogramClass::BorderAndCount);
    let n2 = memory.buckets(HistogramClass::BorderAndTwoCounters);

    for seed in [3u64, 19] {
        let data = cfg.generate(seed);
        for (wl_name, wl) in workloads() {
            let stream = UpdateStream::build(&data.values, wl, seed);

            let mut dc = DcHistogram::new(n1);
            let truth = replay(&mut dc, &stream);
            check_invariants("DC", wl_name, &dc, &truth);

            let mut dvo = DvoHistogram::new(n2);
            let truth = replay(&mut dvo, &stream);
            check_invariants("DVO", wl_name, &dvo, &truth);

            let mut dado = DadoHistogram::new(n2);
            let truth = replay(&mut dado, &stream);
            check_invariants("DADO", wl_name, &dado, &truth);

            let mut ac = AcHistogram::new(n1, memory.sample_elements(20), seed);
            let truth = replay(&mut ac, &stream);
            check_invariants("AC", wl_name, &ac, &truth);
        }
    }
}

#[test]
fn empty_then_refill_cycle() {
    // Drain a histogram completely, then refill with a different
    // distribution; it must recover.
    let memory = MemoryBudget::from_kb(0.5);
    let n = memory.buckets(HistogramClass::BorderAndTwoCounters);
    let mut h = DadoHistogram::new(n);
    let mut truth = DataDistribution::new();

    for v in 0..2000i64 {
        h.insert(v % 100);
        truth.insert(v % 100);
    }
    for v in 0..2000i64 {
        h.delete(v % 100);
        truth.delete(v % 100);
    }
    assert_eq!(h.total_count(), 0.0);

    for v in 0..3000i64 {
        let x = 500 + (v * 17) % 200;
        h.insert(x);
        truth.insert(x);
    }
    let ks = ks_error(&h, &truth);
    assert!(ks < 0.15, "failed to recover after drain/refill: {ks}");
}

#[test]
fn identical_streams_yield_identical_histograms() {
    // Dynamic histograms are deterministic functions of the update stream
    // (AC additionally depends on its sampling seed).
    let cfg = SyntheticConfig::default().with_total_points(5_000);
    let data = cfg.generate(23);
    let stream = UpdateStream::build(&data.values, WorkloadKind::RandomInsertions, 23);

    let mut a = DadoHistogram::new(32);
    let mut b = DadoHistogram::new(32);
    replay(&mut a, &stream);
    replay(&mut b, &stream);
    assert_eq!(a.spans(), b.spans());

    let mut c = AcHistogram::new(32, 1024, 99);
    let mut d = AcHistogram::new(32, 1024, 99);
    replay(&mut c, &stream);
    replay(&mut d, &stream);
    assert_eq!(c.spans(), d.spans());
}
