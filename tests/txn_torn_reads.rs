//! Torn-read regression suite: readers interleaved with multi-writer
//! `WriteBatch` commits must observe **whole epochs only** — never a
//! batch partially applied across the shards of one column, nor across
//! the columns of one batch. This is the race PR 3 documented for the
//! sharded catalog (a batch landed shard-by-shard) made into a test,
//! driven generically over `&dyn ColumnStore` for the single-lock
//! store and both sharded ingestion designs (`IngestMode::Locked` and
//! `::Channel`).
//!
//! The workload makes tearing arithmetically visible: every committed
//! batch inserts exactly one value into *each* of the 8 shard ranges of
//! *both* columns. Therefore, at any pinned epoch `e`:
//!
//! * each column's total mass is exactly `8 * e` (epoch `k` contributed
//!   its full 8 or nothing), and
//! * the two columns of a `SnapshotSet` carry identical mass.
//!
//! Any torn batch — a shard applied early, a column lagging — breaks one
//! of those equalities immediately.
//!
//! The `*_reshard_under_fire` variants additionally race a re-sharder
//! thread forcing border rebuilds against the writers, on a workload
//! whose value mass drifts (so the balanced borders actually keep
//! moving): the same whole-epoch assertions must hold *throughout* the
//! re-shards, because a re-shard conserves mass exactly and swaps
//! routing atomically behind the epoch barrier.

use dynamic_histograms::catalog::CatalogError;
use dynamic_histograms::core::ReadHistogram;
use dynamic_histograms::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

const WRITERS: i64 = 4;
const BATCHES: i64 = 50;
const SHARDS: i64 = 8;
const DOMAIN: (i64, i64) = (0, 799); // 8 shards of width 100

/// Writer `w`'s batch `b`: one insert per shard range, per column.
fn batch(w: i64, b: i64) -> WriteBatch {
    let mut batch = WriteBatch::new();
    for s in 0..SHARDS {
        let v = s * 100 + ((w * BATCHES + b) % 100);
        batch.insert("a", v).insert("b", v);
    }
    batch
}

/// Writer `w`'s batch `b` with drifting skew: still exactly `SHARDS`
/// inserts per column (the whole-epoch arithmetic is value-agnostic),
/// but the mass sits in a hot range that jumps halfway through the
/// replay, so a concurrent re-sharder keeps finding borders to move.
fn drifting_batch(w: i64, b: i64) -> WriteBatch {
    let mut batch = WriteBatch::new();
    let hot = if b < BATCHES / 2 { 0 } else { 600 };
    for s in 0..SHARDS {
        let v = hot + ((w * BATCHES + b + s * 13) % 200);
        batch.insert("a", v).insert("b", v);
    }
    batch
}

fn run_racing(
    store: &dyn ColumnStore,
    label: &str,
    batch_for: fn(i64, i64) -> WriteBatch,
    reshard: bool,
) {
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Readers: every SnapshotSet pins one epoch and must account for
        // exactly that many whole batches, in both columns.
        for _ in 0..2 {
            let store = &store;
            let done = &done;
            scope.spawn(move || {
                let mut last_epoch = 0u64;
                let mut reads = 0u64;
                while !done.load(Ordering::Acquire) || reads == 0 {
                    let set = store.snapshot_set(&["a", "b"]).unwrap();
                    let e = set.epoch();
                    assert!(
                        e >= last_epoch,
                        "{label}: epoch moved backwards: {last_epoch} -> {e}"
                    );
                    last_epoch = e;
                    let a = set.get("a").unwrap();
                    let b = set.get("b").unwrap();
                    assert_eq!(a.epoch(), e, "{label}: column a off the set epoch");
                    assert_eq!(b.epoch(), e, "{label}: column b off the set epoch");
                    let (ta, tb) = (a.total_count(), b.total_count());
                    assert!(
                        (ta - (SHARDS as f64) * e as f64).abs() < 1e-6,
                        "{label}: torn batch across shards: epoch {e} but mass {ta} \
                         (expected {})",
                        SHARDS * e as i64
                    );
                    assert!(
                        (ta - tb).abs() < 1e-6,
                        "{label}: torn batch across columns: a {ta} vs b {tb} at epoch {e}"
                    );
                    // Single-column snapshots obey the same whole-epoch
                    // accounting (their own pin, not the set's).
                    let solo = store.snapshot("a").unwrap();
                    assert!(
                        (solo.total_count() - (SHARDS as f64) * solo.epoch() as f64).abs() < 1e-6,
                        "{label}: solo snapshot torn: epoch {} mass {}",
                        solo.epoch(),
                        solo.total_count()
                    );
                    reads += 1;
                }
            });
        }

        // Optional chaos: a re-sharder forcing border rebuilds on both
        // columns while the writers commit.
        if reshard {
            let store = &store;
            let done = &done;
            scope.spawn(move || {
                let mut moved = 0u32;
                loop {
                    let finished = done.load(Ordering::Acquire);
                    for col in ["a", "b"] {
                        if store.reshard(col).unwrap() {
                            moved += 1;
                        }
                    }
                    if finished {
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                // The drifting workload guarantees at least one border
                // move per column (the final pass runs against the fully
                // skewed data even if the writers outran the loop) — the
                // race is real, not vacuous.
                assert!(moved >= 2, "re-sharder never moved a border");
            });
        }

        // Writers commit cross-column, cross-shard batches; the inner
        // scope joins them before the readers' flag flips.
        std::thread::scope(|writers| {
            for w in 0..WRITERS {
                let store = &store;
                writers.spawn(move || {
                    for b in 0..BATCHES {
                        store.commit(batch_for(w, b)).unwrap();
                    }
                });
            }
        });
        done.store(true, Ordering::Release);
    });

    // Final accounting: every batch published and applied.
    let expected = (WRITERS * BATCHES) as u64;
    assert_eq!(store.epoch(), expected, "{label}");
    for col in ["a", "b"] {
        store.flush(col).unwrap();
        assert_eq!(store.checkpoint(col).unwrap(), expected, "{label}");
        let snap = store.snapshot(col).unwrap();
        assert_eq!(snap.epoch(), expected, "{label}");
        assert!(
            (snap.total_count() - (SHARDS * WRITERS * BATCHES) as f64).abs() < 1e-6,
            "{label}: {col} total {} != {}",
            snap.total_count(),
            SHARDS * WRITERS * BATCHES
        );
    }
}

fn register_both(store: &dyn ColumnStore, plan: ShardPlan) {
    let config = ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0))
        .with_seed(9)
        .with_plan(plan);
    store.register("a", config).unwrap();
    store.register("b", config).unwrap();
}

#[test]
fn single_lock_store_never_serves_torn_batches() {
    let store = Catalog::new();
    register_both(
        &store,
        ShardPlan::new(DOMAIN.0, DOMAIN.1, SHARDS as usize).unwrap(),
    );
    run_racing(&store, "catalog", batch, false);
}

#[test]
fn sharded_locked_store_never_serves_torn_batches() {
    let store = ShardedCatalog::new();
    register_both(
        &store,
        ShardPlan::new(DOMAIN.0, DOMAIN.1, SHARDS as usize).unwrap(),
    );
    run_racing(&store, "sharded-locked", batch, false);
}

#[test]
fn sharded_channel_store_never_serves_torn_batches() {
    let store = ShardedCatalog::new();
    register_both(
        &store,
        ShardPlan::new(DOMAIN.0, DOMAIN.1, SHARDS as usize)
            .unwrap()
            .channel(),
    );
    run_racing(&store, "sharded-channel", batch, false);
}

#[test]
fn sharded_locked_reshard_under_fire_keeps_whole_epochs() {
    let store = ShardedCatalog::new();
    register_both(
        &store,
        ShardPlan::new(DOMAIN.0, DOMAIN.1, SHARDS as usize).unwrap(),
    );
    run_racing(&store, "sharded-locked+reshard", drifting_batch, true);
}

#[test]
fn sharded_channel_reshard_under_fire_keeps_whole_epochs() {
    let store = ShardedCatalog::new();
    register_both(
        &store,
        ShardPlan::new(DOMAIN.0, DOMAIN.1, SHARDS as usize)
            .unwrap()
            .channel(),
    );
    run_racing(&store, "sharded-channel+reshard", drifting_batch, true);
}

/// The provided `estimate_*`/`total_count` convenience methods each pin
/// an independent snapshot, so two calls in one expression can straddle
/// an epoch published between them; reads off one [`SnapshotSet`] are
/// pinned together and cannot.
#[test]
fn snapshot_set_reads_cannot_straddle_epochs() {
    let store = Catalog::new();
    let config = ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(0.5));
    store.register("a", config).unwrap();
    store.register("b", config).unwrap();
    let mut setup = WriteBatch::new();
    setup.extend("a", (0..100).map(UpdateOp::Insert));
    setup.extend("b", (0..100).map(UpdateOp::Insert));
    store.commit(setup).unwrap();

    // A reader captures a consistent view, then a commit lands between
    // its two reads — the exact interleaving the provided methods are
    // vulnerable to.
    let set = store.snapshot_set(&["a", "b"]).unwrap();
    let a_then = store.total_count("a").unwrap();
    let mut racing = WriteBatch::new();
    racing.extend("a", (0..50).map(UpdateOp::Insert));
    racing.extend("b", (0..50).map(UpdateOp::Insert));
    store.commit(racing).unwrap();
    let b_now = store.total_count("b").unwrap();

    // Fresh provided calls straddled the epoch: `a` predates the racing
    // commit, `b` includes it — a torn cross-column view.
    assert!((a_then - 100.0).abs() < 1e-6);
    assert!((b_now - 150.0).abs() < 1e-6);

    // The set's reads are all pinned to its epoch: still the pre-commit
    // state, mutually consistent, regardless of when they are made.
    assert_eq!(set.epoch(), 1);
    assert!((set.total_count("a").unwrap() - 100.0).abs() < 1e-6);
    assert!((set.total_count("b").unwrap() - 100.0).abs() < 1e-6);
    assert!((set.estimate_range("a", 0, 99).unwrap() - 100.0).abs() < 1e-6);
    let eq_est = set.estimate_eq("b", 5).unwrap();
    assert!(eq_est > 0.0);
    // Columns outside the original request error instead of silently
    // reading at a different epoch.
    assert_eq!(
        set.total_count("ghost").unwrap_err(),
        CatalogError::UnknownColumn("ghost".into())
    );
    // A fresh set observes the racing commit — whole, in both columns.
    let set2 = store.snapshot_set(&["a", "b"]).unwrap();
    assert_eq!(set2.epoch(), 2);
    assert!((set2.total_count("a").unwrap() - 150.0).abs() < 1e-6);
    assert!((set2.total_count("b").unwrap() - 150.0).abs() < 1e-6);
}
