//! Torn-read regression suite: readers interleaved with multi-writer
//! `WriteBatch` commits must observe **whole epochs only** — never a
//! batch partially applied across the shards of one column, nor across
//! the columns of one batch. This is the race PR 3 documented for the
//! sharded catalog (a batch landed shard-by-shard) made into a test,
//! driven generically over `&dyn ColumnStore` for the single-lock
//! store and both sharded ingestion designs (`IngestMode::Locked` and
//! `::Channel`).
//!
//! The workload makes tearing arithmetically visible: every committed
//! batch inserts exactly one value into *each* of the 8 shard ranges of
//! *both* columns. Therefore, at any pinned epoch `e`:
//!
//! * each column's total mass is exactly `8 * e` (epoch `k` contributed
//!   its full 8 or nothing), and
//! * the two columns of a `SnapshotSet` carry identical mass.
//!
//! Any torn batch — a shard applied early, a column lagging — breaks one
//! of those equalities immediately.

use dynamic_histograms::core::ReadHistogram;
use dynamic_histograms::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

const WRITERS: i64 = 4;
const BATCHES: i64 = 50;
const SHARDS: i64 = 8;
const DOMAIN: (i64, i64) = (0, 799); // 8 shards of width 100

/// Writer `w`'s batch `b`: one insert per shard range, per column.
fn batch(w: i64, b: i64) -> WriteBatch {
    let mut batch = WriteBatch::new();
    for s in 0..SHARDS {
        let v = s * 100 + ((w * BATCHES + b) % 100);
        batch.insert("a", v).insert("b", v);
    }
    batch
}

fn run(store: &dyn ColumnStore, label: &str) {
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Readers: every SnapshotSet pins one epoch and must account for
        // exactly that many whole batches, in both columns.
        for _ in 0..2 {
            let store = &store;
            let done = &done;
            scope.spawn(move || {
                let mut last_epoch = 0u64;
                let mut reads = 0u64;
                while !done.load(Ordering::Acquire) || reads == 0 {
                    let set = store.snapshot_set(&["a", "b"]).unwrap();
                    let e = set.epoch();
                    assert!(
                        e >= last_epoch,
                        "{label}: epoch moved backwards: {last_epoch} -> {e}"
                    );
                    last_epoch = e;
                    let a = set.get("a").unwrap();
                    let b = set.get("b").unwrap();
                    assert_eq!(a.epoch(), e, "{label}: column a off the set epoch");
                    assert_eq!(b.epoch(), e, "{label}: column b off the set epoch");
                    let (ta, tb) = (a.total_count(), b.total_count());
                    assert!(
                        (ta - (SHARDS as f64) * e as f64).abs() < 1e-6,
                        "{label}: torn batch across shards: epoch {e} but mass {ta} \
                         (expected {})",
                        SHARDS * e as i64
                    );
                    assert!(
                        (ta - tb).abs() < 1e-6,
                        "{label}: torn batch across columns: a {ta} vs b {tb} at epoch {e}"
                    );
                    // Single-column snapshots obey the same whole-epoch
                    // accounting (their own pin, not the set's).
                    let solo = store.snapshot("a").unwrap();
                    assert!(
                        (solo.total_count() - (SHARDS as f64) * solo.epoch() as f64).abs() < 1e-6,
                        "{label}: solo snapshot torn: epoch {} mass {}",
                        solo.epoch(),
                        solo.total_count()
                    );
                    reads += 1;
                }
            });
        }

        // Writers commit cross-column, cross-shard batches; the inner
        // scope joins them before the readers' flag flips.
        std::thread::scope(|writers| {
            for w in 0..WRITERS {
                let store = &store;
                writers.spawn(move || {
                    for b in 0..BATCHES {
                        store.commit(batch(w, b)).unwrap();
                    }
                });
            }
        });
        done.store(true, Ordering::Release);
    });

    // Final accounting: every batch published and applied.
    let expected = (WRITERS * BATCHES) as u64;
    assert_eq!(store.epoch(), expected, "{label}");
    for col in ["a", "b"] {
        store.flush(col).unwrap();
        assert_eq!(store.checkpoint(col).unwrap(), expected, "{label}");
        let snap = store.snapshot(col).unwrap();
        assert_eq!(snap.epoch(), expected, "{label}");
        assert!(
            (snap.total_count() - (SHARDS * WRITERS * BATCHES) as f64).abs() < 1e-6,
            "{label}: {col} total {} != {}",
            snap.total_count(),
            SHARDS * WRITERS * BATCHES
        );
    }
}

fn register_both(store: &dyn ColumnStore, plan: ShardPlan) {
    let config = ColumnConfig::new(AlgoSpec::Dc, MemoryBudget::from_kb(1.0))
        .with_seed(9)
        .with_plan(plan);
    store.register("a", config).unwrap();
    store.register("b", config).unwrap();
}

#[test]
fn single_lock_store_never_serves_torn_batches() {
    let store = Catalog::new();
    register_both(
        &store,
        ShardPlan::new(DOMAIN.0, DOMAIN.1, SHARDS as usize).unwrap(),
    );
    run(&store, "catalog");
}

#[test]
fn sharded_locked_store_never_serves_torn_batches() {
    let store = ShardedCatalog::new();
    register_both(
        &store,
        ShardPlan::new(DOMAIN.0, DOMAIN.1, SHARDS as usize).unwrap(),
    );
    run(&store, "sharded-locked");
}

#[test]
fn sharded_channel_store_never_serves_torn_batches() {
    let store = ShardedCatalog::new();
    register_both(
        &store,
        ShardPlan::new(DOMAIN.0, DOMAIN.1, SHARDS as usize)
            .unwrap()
            .channel(),
    );
    run(&store, "sharded-channel");
}
