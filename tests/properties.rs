//! Property-based tests over the core invariants of every histogram
//! class, using randomly generated streams and distributions.

use dynamic_histograms::core::{ks_error, DataDistribution, Histogram, ReadHistogram};
use dynamic_histograms::prelude::*;
use dynamic_histograms::statics::ExactHistogram;
use dynamic_histograms::stats::Cdf;
use proptest::prelude::*;

/// A small random multiset of values in a narrow domain (provokes
/// duplicates, spikes, adjacency and edge growth).
fn values_strategy() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(0i64..200, 1..400)
}

/// An update stream mixing inserts and deletes, deletes always valid.
fn stream_strategy() -> impl Strategy<Value = Vec<Update>> {
    (values_strategy(), any::<u64>()).prop_map(|(values, seed)| {
        UpdateStream::build(
            &values,
            WorkloadKind::InsertionsWithRandomDeletions {
                delete_probability: 0.3,
            },
            seed,
        )
        .updates()
        .to_vec()
    })
}

fn replay<H: Histogram>(h: &mut H, updates: &[Update]) -> DataDistribution {
    let mut truth = DataDistribution::new();
    for &u in updates {
        match u {
            Update::Insert(v) => {
                h.insert(v);
                truth.insert(v);
            }
            Update::Delete(v) => {
                h.delete(v);
                truth.delete(v);
            }
        }
    }
    truth
}

fn assert_histogram_invariants(h: &impl ReadHistogram, truth: &DataDistribution) {
    // Mass conservation.
    prop_assert_f(
        (h.total_count() - truth.total() as f64).abs() < 1e-6,
        "mass drift",
    );
    // Spans sorted and disjoint, counts nonnegative.
    let spans = h.spans();
    for w in spans.windows(2) {
        prop_assert_f(w[0].hi <= w[1].lo + 1e-9, "span overlap");
    }
    for s in &spans {
        prop_assert_f(s.count >= -1e-9, "negative count");
        prop_assert_f(s.lo <= s.hi, "reversed span");
    }
    // CDF monotone in [0, 1].
    let cdf = h.cdf();
    let mut prev = 0.0;
    for i in -5..=210 {
        let f = cdf.fraction_le(i as f64);
        prop_assert_f((0.0..=1.0 + 1e-12).contains(&f), "cdf out of range");
        prop_assert_f(f + 1e-12 >= prev, "cdf not monotone");
        prev = f;
    }
    // KS statistic well-formed.
    let ks = ks_error(h, truth);
    prop_assert_f((0.0..=1.0).contains(&ks), "ks out of range");
}

/// proptest's `prop_assert!` only works inside `proptest!`; this adapter
/// lets the helper be shared.
fn prop_assert_f(cond: bool, msg: &str) {
    assert!(cond, "{msg}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dado_invariants_hold_on_random_streams(updates in stream_strategy()) {
        let mut h = DadoHistogram::new(16);
        let truth = replay(&mut h, &updates);
        assert_histogram_invariants(&h, &truth);
    }

    #[test]
    fn dvo_invariants_hold_on_random_streams(updates in stream_strategy()) {
        let mut h = DvoHistogram::new(16);
        let truth = replay(&mut h, &updates);
        assert_histogram_invariants(&h, &truth);
    }

    #[test]
    fn dc_invariants_hold_on_random_streams(updates in stream_strategy()) {
        let mut h = DcHistogram::new(16);
        let truth = replay(&mut h, &updates);
        assert_histogram_invariants(&h, &truth);
    }

    #[test]
    fn ac_invariants_hold_on_random_streams(
        updates in stream_strategy(),
        seed in any::<u64>(),
    ) {
        let mut h = AcHistogram::new(16, 256, seed);
        let truth = replay(&mut h, &updates);
        assert_histogram_invariants(&h, &truth);
    }

    #[test]
    fn static_histograms_preserve_mass_and_order(values in values_strategy()) {
        let truth = DataDistribution::from_values(&values);
        let n = 8usize;
        let spans_of: Vec<(&str, Vec<dynamic_histograms::core::BucketSpan>)> = vec![
            ("equiwidth", EquiWidthHistogram::build(&truth, n).spans()),
            ("equidepth", EquiDepthHistogram::build(&truth, n).spans()),
            ("compressed", CompressedHistogram::build(&truth, n).spans()),
            ("voptimal", VOptimalHistogram::build(&truth, n).spans()),
            ("sado", SadoHistogram::build(&truth, n).spans()),
            ("ssbm", SsbmHistogram::build(&truth, n).spans()),
        ];
        for (name, spans) in spans_of {
            let mass: f64 = spans.iter().map(|s| s.count).sum();
            prop_assert!(
                (mass - truth.total() as f64).abs() < 1e-6,
                "{} lost mass: {} vs {}", name, mass, truth.total()
            );
            for w in spans.windows(2) {
                prop_assert!(w[0].hi <= w[1].lo + 1e-9, "{} overlap", name);
            }
        }
    }

    #[test]
    fn exact_histogram_always_scores_zero(values in values_strategy()) {
        let truth = DataDistribution::from_values(&values);
        let h = ExactHistogram::build(&truth);
        prop_assert!(ks_error(&h, &truth) < 1e-9);
    }

    #[test]
    fn equi_depth_respects_one_over_beta(values in values_strategy(), n in 2usize..20) {
        let truth = DataDistribution::from_values(&values);
        let h = EquiDepthHistogram::build(&truth, n);
        let ks = ks_error(&h, &truth);
        prop_assert!(
            ks <= 1.0 / n as f64 + 1e-9,
            "equi-depth KS {} exceeded 1/{} bound", ks, n
        );
    }

    #[test]
    fn estimates_are_bounded_by_total(values in values_strategy()) {
        let mut h = DadoHistogram::new(12);
        for &v in &values {
            h.insert(v);
        }
        let total = values.len() as f64;
        for a in (0..200).step_by(17) {
            let est = h.estimate_range(a, a + 20);
            prop_assert!(est >= -1e-9 && est <= total + 1e-6);
        }
        prop_assert!((h.estimate_le(i64::MAX / 2) - total).abs() < 1e-6);
    }

    #[test]
    fn voptimal_never_worse_than_equiwidth_cost(values in values_strategy()) {
        // V-Optimal minimizes weighted variance; in KS terms it may not
        // always dominate, but its own objective must beat any other
        // partition, e.g. the equi-width one. Verify via bucket variances.
        let truth = DataDistribution::from_values(&values);
        let n = 6usize;
        let cost = |spans: &[dynamic_histograms::core::BucketSpan]| -> f64 {
            // Sum over buckets of sum over grid values of (f - mean)^2.
            let mut total = 0.0;
            for s in spans {
                let lo = s.lo.floor() as i64;
                let hi = s.hi.ceil() as i64;
                let width = (hi - lo).max(1);
                let mean = s.count / width as f64;
                for v in lo..hi {
                    let f = truth.frequency(v) as f64;
                    total += (f - mean) * (f - mean);
                }
            }
            total
        };
        let vo = VOptimalHistogram::build(&truth, n);
        let ew = EquiWidthHistogram::build(&truth, n);
        // The DP cost uses per-bucket means of true frequencies; recompute
        // both costs the same way for a fair comparison.
        let recost = |spans: &[dynamic_histograms::core::BucketSpan]| -> f64 {
            let mut total = 0.0;
            for s in spans {
                let lo = s.lo.floor() as i64;
                let hi = s.hi.ceil() as i64;
                if hi <= lo { continue; }
                let freqs: Vec<f64> =
                    (lo..hi).map(|v| truth.frequency(v) as f64).collect();
                let mean = freqs.iter().sum::<f64>() / freqs.len() as f64;
                total += freqs.iter().map(|f| (f - mean) * (f - mean)).sum::<f64>();
            }
            total
        };
        let _ = cost; // the scaled-count variant is intentionally unused
        prop_assert!(
            recost(&vo.spans()) <= recost(&ew.spans()) + 1e-6,
            "V-Optimal cost {} exceeded equi-width cost {}",
            recost(&vo.spans()),
            recost(&ew.spans())
        );
    }
}
