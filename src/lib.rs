//! # dynamic-histograms
//!
//! A faithful, from-scratch Rust reproduction of *Dynamic Histograms:
//! Capturing Evolving Data Sets* (Donjerkovic, Ioannidis & Ramakrishnan,
//! ICDE 2000).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`core`] — the histogram framework and the paper's dynamic histograms
//!   (DC, DVO, DADO).
//! * [`statics`] — static histograms: Equi-Width, Equi-Depth, Compressed,
//!   V-Optimal, SADO and SSBM.
//! * [`sample`] — reservoir sampling and the Approximate Compressed (AC)
//!   baseline of Gibbons–Matias–Poosala.
//! * [`distributed`] — global histograms in a shared-nothing environment
//!   (Section 8).
//! * [`gen`] — the parameterized synthetic data generator and update
//!   workloads of the paper's evaluation.
//! * [`stats`] — chi-square machinery, KS statistic and error metrics.
//! * [`optimizer`] — histogram-backed cardinality estimation for
//!   selections and equi-join chains (the paper's motivating use case),
//!   over plain `&dyn ReadHistogram` so chains may mix algorithms.
//! * [`catalog`] — the `AlgoSpec` algorithm registry and the serving
//!   layer: one object-safe `ColumnStore` trait implemented by the
//!   single-lock `Catalog` and the `ShardedCatalog`, with transactional
//!   epoch-stamped `WriteBatch` commits and consistent multi-column
//!   `SnapshotSet` reads — plus `DurableStore`, which makes any of them
//!   crash-durable and time-travelable.
//! * [`wal`] — the epoch-changelog write-ahead log, checkpoint files and
//!   crash-recovery primitives `DurableStore` persists through (see
//!   `docs/DURABILITY.md`).
//! * [`replica`] — read replicas: a `Follower` tails a leader's
//!   changelog directory and serves the same wait-free read path at a
//!   bounded, reported staleness (see `docs/REPLICATION.md`).
//! * [`site`] — the multi-site global catalog: a `Site` abstraction over
//!   in-process and socket-remote estimator backends, composed by a
//!   read-only `GlobalCatalog` that degrades instead of failing when
//!   members go down, with site-to-site epoch catch-up (see
//!   `docs/GLOBAL.md`).
//!
//! ## Quickstart
//!
//! ```
//! use dynamic_histograms::prelude::*;
//!
//! // Maintain a 32-bucket DADO histogram over a stream of integers.
//! let mut h = DadoHistogram::new(32);
//! for v in 0..10_000i64 {
//!     h.insert((v * v) % 997);
//! }
//!
//! // Estimate the selectivity of `X < 250`.
//! let est = h.estimate_less_than(250.0);
//! let truth = (0..10_000i64).filter(|v| (v * v) % 997 < 250).count() as f64;
//! assert!((est - truth).abs() / truth < 0.15);
//! ```

pub use dh_catalog as catalog;
pub use dh_core as core;
pub use dh_distributed as distributed;
pub use dh_gen as gen;
pub use dh_optimizer as optimizer;
pub use dh_replica as replica;
pub use dh_sample as sample;
pub use dh_site as site;
pub use dh_static as statics;
pub use dh_stats as stats;
pub use dh_wal as wal;

/// One-stop imports for applications.
pub mod prelude {
    pub use dh_catalog::{
        AlgoSpec, AutoscalePolicy, Catalog, CatalogError, ColumnConfig, ColumnShape, ColumnStore,
        DurableError, DurableOptions, DurableStore, IngestMode, ReadStats, RebuildPlan,
        ReshardPolicy, ShardMap, ShardPlan, ShardedCatalog, Snapshot, SnapshotSet, StoreKind,
        WriteBatch,
    };
    pub use dh_core::dynamic::{
        AbsoluteDeviation, DadoHistogram, DcHistogram, DvoHistogram, Grid2dHistogram,
        MultiSubHistogram, SquaredDeviation,
    };
    pub use dh_core::{
        BoxedHistogram, DataDistribution, DynHistogram, Histogram, HistogramCdf, HistogramClass,
        MemoryBudget, ReadHistogram, UpdateOp,
    };
    pub use dh_gen::{
        cluster::ClusterShape,
        synthetic::{SyntheticConfig, SyntheticDataset},
        workload::{Update, UpdateStream, WorkloadKind},
    };
    pub use dh_replica::{Follower, PollReport, PollStatus};
    pub use dh_sample::{AcHistogram, ReservoirSample};
    pub use dh_site::{
        catch_up, GlobalCatalog, LocalSite, RemoteSite, Site, SiteServer, SiteStatus,
    };
    pub use dh_static::{
        CompressedHistogram, EquiDepthHistogram, EquiWidthHistogram, SadoHistogram, SsbmHistogram,
        VOptimalHistogram,
    };
    pub use dh_stats::{ks_between, Cdf, StepCdf};
    pub use dh_wal::{SyncPolicy, TempDir, WalError};
}
