//! The paper's opening motivation, end to end: selectivity-estimation
//! errors propagate through join plans, so a histogram that goes stale
//! poisons the optimizer's cardinality estimates — while a dynamic
//! histogram keeps them sharp at negligible maintenance cost.
//!
//! Four relations join on a shared key. After the static histograms are
//! built, the data keeps evolving (new keys arrive, old ones retire). We
//! then ask both kinds of histograms to estimate the join-chain sizes.
//!
//! ```text
//! cargo run --release --example join_cardinality
//! ```

use dynamic_histograms::core::{DataDistribution, ReadHistogram};
use dynamic_histograms::optimizer::{propagate_chain, SpanHistogram};
use dynamic_histograms::prelude::*;

fn main() {
    const RELATIONS: usize = 4;
    const BUCKETS: usize = 64;

    // Phase 1: initial data. Keys clustered in [0, 600).
    let mut truths: Vec<DataDistribution> = vec![DataDistribution::new(); RELATIONS];
    let mut dynamics: Vec<DadoHistogram> = (0..RELATIONS)
        .map(|_| DadoHistogram::new(BUCKETS))
        .collect();
    for (r, (truth, dynh)) in truths.iter_mut().zip(&mut dynamics).enumerate() {
        for i in 0..20_000i64 {
            let v = ((i * (7 + r as i64 * 2)) % 600 + (i % 13) * 3) % 600;
            truth.insert(v);
            dynh.insert(v);
        }
    }

    // The DBA builds Compressed histograms now... and never again.
    let statics: Vec<CompressedHistogram> = truths
        .iter()
        .map(|t| CompressedHistogram::build(t, BUCKETS))
        .collect();

    // Phase 2: the workload drifts — old keys retire and a *hot* key (777)
    // emerges, carrying 30% of each relation. Hot keys are what make join
    // sizes explode, so a histogram that missed the drift will be
    // catastrophically wrong about the plan.
    for (r, (truth, dynh)) in truths.iter_mut().zip(&mut dynamics).enumerate() {
        for i in 0..20_000i64 {
            let old = ((i * (7 + r as i64 * 2)) % 600 + (i % 13) * 3) % 600;
            truth.delete(old);
            dynh.delete(old);
            let new = if i % 10 < 3 {
                777
            } else {
                600 + ((i * (11 + r as i64 * 3)) % 600)
            };
            truth.insert(new);
            dynh.insert(new);
        }
    }

    // Phase 3: estimate join-chain cardinalities R1 ⋈ R2 ⋈ R3 ⋈ R4.
    // `propagate_chain` takes `&dyn ReadHistogram`, so a chain may mix
    // algorithms freely; here each side is homogeneous for the comparison.
    let dyn_refs: Vec<&dyn ReadHistogram> = dynamics.iter().map(|h| h as _).collect();
    let dyn_report = propagate_chain(&dyn_refs, &truths);
    let static_spans: Vec<SpanHistogram> = statics
        .iter()
        .map(|h| SpanHistogram::new(h.spans()))
        .collect();
    let static_refs: Vec<&dyn ReadHistogram> = static_spans.iter().map(|h| h as _).collect();
    let static_report = propagate_chain(&static_refs, &truths);

    println!("join-chain cardinality estimation after data drift\n");
    println!(
        "{:<10} {:>16} {:>16} {:>16}",
        "depth", "exact", "DADO (fresh)", "SC (stale)"
    );
    for k in 0..dyn_report.exact.len() {
        println!(
            "{:<10} {:>16.3e} {:>16.3e} {:>16.3e}",
            format!("{}-way", k + 2),
            dyn_report.exact[k],
            dyn_report.estimated[k],
            static_report.estimated[k],
        );
    }
    println!(
        "\nrelative error at depth {}: DADO {:.1}%, stale static {:.1}%",
        RELATIONS,
        100.0 * dyn_report.final_error(),
        100.0 * static_report.final_error()
    );
    assert!(
        dyn_report.final_error() < 0.5,
        "dynamic histograms should stay usable"
    );
    assert!(
        static_report.final_error() > 0.9,
        "the stale static plan should be badly wrong"
    );
    println!("the dynamic histograms kept the optimizer honest; the stale ones did not.");
}
