//! The paper's core motivation: a rolling data warehouse whose
//! distribution drifts. A static histogram built once goes stale; a
//! dynamic histogram tracks the data at a tiny incremental cost.
//!
//! The simulated workload is a 30-"day" window of order amounts whose mean
//! drifts upward day by day (price inflation / product-mix shift). Each
//! day inserts fresh orders and deletes the oldest day's.
//!
//! ```text
//! cargo run --release --example evolving_warehouse
//! ```

use dynamic_histograms::core::ks_error;
use dynamic_histograms::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ORDERS_PER_DAY: usize = 2_000;
const WINDOW_DAYS: usize = 30;
const TOTAL_DAYS: usize = 120;

/// One day's orders: normal around a drifting mean.
fn day_orders(day: usize, rng: &mut StdRng) -> Vec<i64> {
    let mean = 200.0 + 8.0 * day as f64; // steady drift
    let sd = 40.0;
    (0..ORDERS_PER_DAY)
        .map(|_| {
            let u: f64 = rng.gen_range(-1.0f64..1.0);
            let v: f64 = rng.gen_range(-1.0f64..1.0);
            let s = u * u + v * v;
            let z = if s > 0.0 && s < 1.0 {
                u * (-2.0 * s.ln() / s).sqrt()
            } else {
                0.0
            };
            ((mean + sd * z).round() as i64).clamp(0, 5000)
        })
        .collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let memory = MemoryBudget::from_kb(1.0);

    let mut dynamic = DadoHistogram::new(memory.buckets(HistogramClass::BorderAndTwoCounters));
    let mut truth = DataDistribution::new();
    let mut window: std::collections::VecDeque<Vec<i64>> = std::collections::VecDeque::new();

    // The "DBA" builds one static histogram at the end of day 30 and never
    // rebuilds it — the scenario the paper's introduction warns about.
    let mut stale_static: Option<CompressedHistogram> = None;

    println!("day | live orders | KS dynamic | KS stale-static");
    for day in 0..TOTAL_DAYS {
        let orders = day_orders(day, &mut rng);
        for &v in &orders {
            dynamic.insert(v);
            truth.insert(v);
        }
        window.push_back(orders);
        if window.len() > WINDOW_DAYS {
            for v in window.pop_front().expect("window nonempty") {
                dynamic.delete(v);
                truth.delete(v);
            }
        }
        if day + 1 == WINDOW_DAYS {
            stale_static = Some(CompressedHistogram::build(
                &truth,
                memory.buckets(HistogramClass::BorderAndCount),
            ));
        }
        if (day + 1) % 15 == 0 {
            let ks_dyn = ks_error(&dynamic, &truth);
            let ks_static = stale_static
                .as_ref()
                .map(|h| ks_error(h, &truth))
                .unwrap_or(f64::NAN);
            println!(
                "{day:>3} | {:>11} | {ks_dyn:>10.4} | {ks_static:>15.4}",
                truth.total()
            );
        }
    }

    let ks_dyn = ks_error(&dynamic, &truth);
    let ks_static = ks_error(stale_static.as_ref().expect("built on day 30"), &truth);
    println!(
        "\nafter {TOTAL_DAYS} days of drift: dynamic KS = {ks_dyn:.4}, \
         stale static KS = {ks_static:.4}"
    );
    assert!(
        ks_dyn * 5.0 < ks_static,
        "the dynamic histogram should be far more accurate than the stale static one"
    );
    println!("the dynamic histogram tracked the drift; the static one went stale.");
}
