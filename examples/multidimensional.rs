//! The paper's future-work direction, working: a two-dimensional dynamic
//! histogram over an evolving spatial data set.
//!
//! Scenario: a delivery service tracks active orders by (zone_x, zone_y).
//! Demand hot-spots move during the day; the 2-D split-merge histogram
//! follows them without rebuilds, answering the 2-D range counts a spatial
//! optimizer needs.
//!
//! ```text
//! cargo run --release --example multidimensional
//! ```

use dynamic_histograms::core::dynamic::{AbsoluteDeviation, Grid2dHistogram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn gaussian_point(rng: &mut StdRng, cx: f64, cy: f64, sd: f64) -> (i64, i64) {
    let mut sample = |c: f64| loop {
        let u: f64 = rng.gen_range(-1.0f64..1.0);
        let v: f64 = rng.gen_range(-1.0f64..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            let z = u * (-2.0 * s.ln() / s).sqrt();
            return ((c + sd * z).round() as i64).clamp(0, 255);
        }
    };
    (sample(cx), sample(cy))
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut h = Grid2dHistogram::<AbsoluteDeviation>::new(64, (0, 255), (0, 255));

    // Morning: downtown hot-spot at (60, 60), suburbs at (200, 180).
    let mut live: Vec<(i64, i64)> = Vec::new();
    println!("morning: 20,000 orders, hot-spot downtown (60, 60)");
    for i in 0..20_000 {
        let p = if i % 4 != 0 {
            gaussian_point(&mut rng, 60.0, 60.0, 12.0)
        } else {
            gaussian_point(&mut rng, 200.0, 180.0, 25.0)
        };
        h.insert(p.0, p.1);
        live.push(p);
    }
    report(&h, &live);

    // Evening: downtown orders complete (deleted); stadium district
    // (220, 40) lights up.
    println!("\nevening: morning orders complete, stadium (220, 40) surges");
    for &(x, y) in &live {
        h.delete(x, y);
    }
    let mut evening: Vec<(i64, i64)> = Vec::new();
    for _ in 0..15_000 {
        let p = gaussian_point(&mut rng, 220.0, 40.0, 10.0);
        h.insert(p.0, p.1);
        evening.push(p);
    }
    report(&h, &evening);

    // Spatial range queries an optimizer would ask.
    println!("\n2-D range estimates (evening state):");
    for (label, x, y) in [
        (
            "stadium box (200..240, 20..60)",
            (200i64, 240i64),
            (20i64, 60i64),
        ),
        ("downtown box (40..80, 40..80)", (40, 80), (40, 80)),
        ("whole city", (0, 255), (0, 255)),
    ] {
        let est = h.estimate_range(x, y);
        let act = evening
            .iter()
            .filter(|&&(px, py)| px >= x.0 && px <= x.1 && py >= y.0 && py <= y.1)
            .count();
        println!("  {label:36} estimate {est:>8.0}, actual {act:>8}");
    }
}

fn report(h: &Grid2dHistogram<AbsoluteDeviation>, live: &[(i64, i64)]) {
    println!(
        "  {} buckets over {} live points",
        h.num_buckets(),
        h.total_count()
    );
    // Max relative error over a fixed probe grid of quadrant queries.
    let mut worst = 0.0f64;
    for qx in 0..4i64 {
        for qy in 0..4i64 {
            let x = (qx * 64, qx * 64 + 63);
            let y = (qy * 64, qy * 64 + 63);
            let est = h.estimate_range(x, y);
            let act = live
                .iter()
                .filter(|&&(px, py)| px >= x.0 && px <= x.1 && py >= y.0 && py <= y.1)
                .count() as f64;
            worst = worst.max((est - act).abs() / live.len() as f64);
        }
    }
    println!(
        "  worst 64x64-block selectivity error: {:.3}% of N",
        worst * 100.0
    );
}
