//! A query-optimizer scenario: compare the selectivity estimates of every
//! histogram class in this workspace on a skewed, clustered data set.
//!
//! This is the paper's motivating use case (Section 1): intermediate
//! result-size estimation for a cost-based optimizer, where estimation
//! errors grow exponentially with the number of joins.
//!
//! ```text
//! cargo run --release --example selectivity_estimation
//! ```

use dynamic_histograms::core::ks_error;
use dynamic_histograms::prelude::*;

fn main() {
    // A clustered Zipfian data set from the paper's generator (Section
    // 6.1): 100k points, 200 clusters, Z = S = 1, SD = 2.
    let config = SyntheticConfig::default().with_clusters(200);
    let dataset = config.generate(42);
    let truth = DataDistribution::from_values(&dataset.values);
    println!(
        "data: {} points, {} distinct values over [0, 5000]\n",
        truth.total(),
        truth.distinct()
    );

    // Everyone gets the same 1 KB of memory (the paper's reference).
    let memory = MemoryBudget::from_kb(1.0);
    let n_static = memory.buckets(HistogramClass::BorderAndCount);
    let n_subbucket = memory.buckets(HistogramClass::BorderAndTwoCounters);

    // Static histograms: built from a full scan.
    let equi_width = EquiWidthHistogram::build(&truth, n_static);
    let equi_depth = EquiDepthHistogram::build(&truth, n_static);
    let compressed = CompressedHistogram::build(&truth, n_static);
    let ssbm = SsbmHistogram::build(&truth, n_static);

    // Dynamic histogram: fed incrementally, never sees the full data.
    let mut dado = DadoHistogram::new(n_subbucket);
    for &v in &dataset.shuffled(7) {
        dado.insert(v);
    }

    // Range predicates of varying selectivity.
    let predicates: Vec<(i64, i64)> = vec![
        (0, 500),
        (1000, 1200),
        (2400, 2600),
        (4000, 5000),
        (100, 4900),
    ];

    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "predicate", "truth", "EquiWidth", "EquiDepth", "SC", "SSBM", "DADO"
    );
    for &(a, b) in &predicates {
        println!(
            "{:<24} {:>10} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
            format!("{a} <= X <= {b}"),
            truth.count_range(a, b),
            equi_width.estimate_range(a, b),
            equi_depth.estimate_range(a, b),
            compressed.estimate_range(a, b),
            ssbm.estimate_range(a, b),
            dado.estimate_range(a, b),
        );
    }

    println!("\nKS statistic (max selectivity error of any range predicate):");
    println!("  EquiWidth : {:.5}", ks_error(&equi_width, &truth));
    println!("  EquiDepth : {:.5}", ks_error(&equi_depth, &truth));
    println!("  SC        : {:.5}", ks_error(&compressed, &truth));
    println!("  SSBM      : {:.5}", ks_error(&ssbm, &truth));
    println!(
        "  DADO      : {:.5} (built incrementally!)",
        ks_error(&dado, &truth)
    );
}
