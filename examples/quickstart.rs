//! Quickstart: maintain a dynamic histogram over an evolving stream and
//! use it for selectivity estimation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dynamic_histograms::prelude::*;

fn main() {
    // A DADO histogram — the paper's best dynamic histogram — with 64
    // buckets (each stores a left border and two sub-bucket counters).
    let mut histogram = DadoHistogram::new(64);

    // Ground truth tracker, only for demonstration / error reporting.
    let mut truth = DataDistribution::new();

    // Phase 1: a bimodal stream of "order amounts".
    println!("phase 1: inserting 50,000 points around $40 and $180 ...");
    for i in 0..50_000i64 {
        let v = if i % 2 == 0 {
            30 + (i * 7919) % 21 // $30..$50
        } else {
            150 + (i * 104_729) % 61 // $150..$210
        };
        histogram.insert(v);
        truth.insert(v);
    }
    report(&histogram, &truth);

    // Phase 2: the data set evolves — a flash sale at exactly $99.
    println!("\nphase 2: a spike of 30,000 orders at exactly $99 ...");
    for _ in 0..30_000 {
        histogram.insert(99);
        truth.insert(99);
    }
    report(&histogram, &truth);

    // Phase 3: old data is rolled out (deletions), no rebuild needed.
    println!("\nphase 3: deleting 25,000 of the phase-1 points ...");
    for i in 0..25_000i64 {
        let v = if i % 2 == 0 {
            30 + (i * 7919) % 21
        } else {
            150 + (i * 104_729) % 61
        };
        histogram.delete(v);
        truth.delete(v);
    }
    report(&histogram, &truth);

    // The histogram answers the estimates a query optimizer needs.
    println!("\nselectivity estimates (predicate -> estimate vs truth):");
    for (label, lo, hi) in [
        ("amount <= 50", i64::MIN, 50),
        ("amount BETWEEN 90 AND 110", 90, 110),
        ("amount BETWEEN 150 AND 210", 150, 210),
    ] {
        let est = if lo == i64::MIN {
            histogram.estimate_le(hi)
        } else {
            histogram.estimate_range(lo, hi)
        };
        let act = if lo == i64::MIN {
            truth.count_le(hi)
        } else {
            truth.count_range(lo, hi)
        } as f64;
        println!("  {label:28} {est:10.0} vs {act:10.0}");
    }
}

fn report(h: &DadoHistogram, truth: &DataDistribution) {
    let ks = dynamic_histograms::core::ks_error(h, truth);
    println!(
        "  {} buckets over {} live points, reorganizations: {}, KS error: {:.4}",
        h.num_buckets(),
        truth.total(),
        h.reorganization_count(),
        ks
    );
    assert!(ks < 0.05, "histogram lost track of the distribution");
}
