//! Global histograms over a shared-nothing union (Section 8).
//!
//! Five member sites each hold Zipf-skewed data over their own attribute
//! subrange and maintain a local SSBM histogram in 250 bytes. A
//! coordinator builds the global histogram two ways and compares quality:
//!
//! * histogram + union: superimpose the members' histograms (lossless),
//!   then SSBM-reduce back to the memory budget;
//! * union + histogram: pool the raw data and build one SSBM directly.
//!
//! ```text
//! cargo run --release --example distributed_union
//! ```

use dynamic_histograms::core::ks_error;
use dynamic_histograms::distributed::{
    build_global, superimpose, DistributedConfig, GlobalStrategy,
};
use dynamic_histograms::prelude::*;
use dynamic_histograms::statics::SsbmHistogram as Ssbm;

fn main() {
    let cfg = DistributedConfig::default(); // 5 sites, 250 B, Z_Freq = 1
    println!(
        "{} sites, {} points total, {} buckets per histogram ({} bytes)\n",
        cfg.sites,
        cfg.total_points,
        cfg.buckets(),
        cfg.memory.bytes()
    );

    let sites = cfg.generate_sites(7);
    let mut pooled = DataDistribution::new();
    for (i, site) in sites.iter().enumerate() {
        println!(
            "site {i}: {:>6} points over [{}, {}]",
            site.values.len(),
            site.range.0,
            site.range.1
        );
        for &v in &site.values {
            pooled.insert(v);
        }
    }

    // Member histograms and their lossless superposition.
    let members: Vec<Vec<_>> = sites
        .iter()
        .map(|s| Ssbm::build(&DataDistribution::from_values(&s.values), cfg.buckets()).spans())
        .collect();
    let composite = superimpose(&members);
    println!(
        "\nsuperposition of 5 member histograms: {} elementary buckets",
        composite.len()
    );

    let hu = build_global(&cfg, &sites, GlobalStrategy::HistogramThenUnion);
    let uh = build_global(&cfg, &sites, GlobalStrategy::UnionThenHistogram);

    let ks_hu = ks_error(&hu, &pooled);
    let ks_uh = ks_error(&uh, &pooled);
    println!(
        "histogram + union : {} buckets, KS = {ks_hu:.5}",
        hu.num_buckets()
    );
    println!(
        "union + histogram : {} buckets, KS = {ks_uh:.5}",
        uh.num_buckets()
    );
    println!(
        "\nthe two strategies are within {:.5} of each other — the paper's\n\
         conclusion: merging local histograms loses almost nothing, so\n\
         there is no need to ship raw data to build a global histogram.",
        (ks_hu - ks_uh).abs()
    );
}
